"""Sweep aggregation: fold per-run outcomes into one :class:`SweepReport`.

The report carries, per grid cell, the headline metrics the paper's evaluation
tables report -- energy, migrations, SLA violations, packing -- plus aggregate
rows grouped over the seed axis (mean/min/max per scenario x policy x
thresholds group).  It serializes to canonical JSON (sorted keys) and to CSV.

Determinism contract: :meth:`SweepReport.to_dict`, :meth:`to_json` and
:meth:`to_csv` contain **no wall-clock quantities**, so running the same sweep
with any number of jobs yields byte-identical serializations (the test suite
asserts this).  Wall-clock timing lives in the separate :attr:`SweepReport.timing`
attribute for the benchmark harness and the human CLI output.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

from repro.obs import deterministic_observability
from repro.sweeps.spec import SweepSpec, policy_cell_label, thresholds_label

#: Per-run metric columns, in CSV order.
METRIC_COLUMNS = (
    "energy_kwh",
    "transition_kwh",
    "mean_power_watts",
    "migrations",
    "relocations",
    "sla_violations",
    "rejected",
    "placed",
    "mean_latency_seconds",
    "mean_active_hosts",
    "peak_active_hosts",
    "requests_served",
    "requests_dropped_ratio",
    "request_p99_latency_seconds",
    "simulated_seconds",
)

#: Identity columns preceding the metrics in every CSV row.
KEY_COLUMNS = ("index", "scenario", "policies", "thresholds", "seed", "status", "error")

#: Default Pareto objectives (all minimized): the paper's fundamental
#: trade-off -- energy saved vs SLA kept vs migration churn paid for it.
PARETO_OBJECTIVES = ("energy_kwh", "sla_violations", "migrations")


def _metrics_from_result(result: Dict[str, dict]) -> Dict[str, float]:
    """Extract the report's metric row from a ``ScenarioResult`` dictionary."""
    submissions = result.get("submissions", {})
    energy = result.get("energy", {})
    packing = result.get("packing", {})
    availability = result.get("availability", {})
    traffic = result.get("traffic") or {}
    requests = traffic.get("requests", {})
    latency = traffic.get("latency_seconds", {})
    rejected = float(submissions.get("rejected", 0))
    overloads = float(availability.get("overload_events", 0))
    return {
        "energy_kwh": float(energy.get("infrastructure_kwh", 0.0)),
        "transition_kwh": float(energy.get("transition_kwh", 0.0)),
        "mean_power_watts": float(energy.get("mean_power_watts", 0.0)),
        "migrations": float(availability.get("migrations_completed", 0)),
        "relocations": float(availability.get("relocations", 0)),
        # SLA violations: submissions the system turned away plus overload
        # episodes where placed VMs were at risk of degradation.
        "sla_violations": rejected + overloads,
        "rejected": rejected,
        "placed": float(submissions.get("placed", 0)),
        "mean_latency_seconds": float(submissions.get("mean_latency_seconds", 0.0)),
        "mean_active_hosts": float(packing.get("mean_active_hosts", 0.0)),
        "peak_active_hosts": float(packing.get("peak_active_hosts", 0.0)),
        # Traffic-plane SLA metrics; zero for scenarios without a traffic
        # section so the CSV schema stays rectangular across mixed sweeps.
        "requests_served": float(requests.get("served", 0.0)),
        "requests_dropped_ratio": float(requests.get("dropped_ratio", 0.0)),
        "request_p99_latency_seconds": float(latency.get("p99", 0.0)),
        "simulated_seconds": float(result.get("duration", 0.0)),
    }


class SweepReport:
    """Aggregated outcome of one executed sweep."""

    def __init__(
        self,
        spec: SweepSpec,
        runs: List[dict],
        timing: Optional[dict] = None,
    ) -> None:
        self.spec = spec
        #: Per-run rows (deterministic content only), in run-index order.
        self.runs = runs
        #: Wall-clock info (total seconds, jobs, per-run seconds); NOT serialized
        #: by :meth:`to_dict` -- reports must be identical across job counts.
        self.timing = timing or {}

    # ------------------------------------------------------------ construction
    @classmethod
    def from_outcomes(
        cls,
        spec: SweepSpec,
        outcomes: Sequence[Dict[str, object]],
        jobs: int = 1,
        wall_seconds: Optional[float] = None,
    ) -> "SweepReport":
        """Fold executor outcomes (see :mod:`repro.sweeps.executor`) into a report."""
        runs: List[dict] = []
        per_run_wall: List[float] = []
        for position, outcome in enumerate(outcomes):
            # A failed outcome may carry an incomplete payload (the executor's
            # isolation contract covers arbitrary junk); aggregation must
            # degrade to a failed row, never crash at report time.
            payload = outcome.get("run") or {}
            ok = outcome["status"] == "ok"
            row = {
                "index": payload.get("index", position),
                "scenario": payload.get("scenario") or "?",
                "policies": policy_cell_label(payload.get("policies") or {}),
                "thresholds": thresholds_label(payload.get("thresholds")),
                "base_seed": payload.get("base_seed"),
                "seed": payload.get("seed"),
                "status": outcome["status"],
                "error": outcome.get("error"),
                "metrics": _metrics_from_result(outcome["result"]) if ok else None,
                "resolved_policies": (
                    dict(outcome["result"].get("policies", {})) if ok else None
                ),
                # Observability rollup with the wall-clock keys stripped, so
                # reports stay byte-identical across job counts.
                "observability": (
                    deterministic_observability(outcome["result"].get("observability") or {})
                    if ok
                    else None
                ),
            }
            runs.append(row)
            per_run_wall.append(round(float(outcome.get("wall_seconds", 0.0)), 4))
        timing = {
            "jobs": int(jobs),
            "wall_seconds_total": (
                round(float(wall_seconds), 4) if wall_seconds is not None else None
            ),
            "run_wall_seconds": per_run_wall,
        }
        return cls(spec=spec, runs=runs, timing=timing)

    # -------------------------------------------------------------- inspection
    @property
    def total_runs(self) -> int:
        """Number of grid cells executed."""
        return len(self.runs)

    @property
    def failed(self) -> int:
        """Number of cells that raised (isolated by the executor)."""
        return sum(1 for run in self.runs if run["status"] != "ok")

    def failures(self) -> List[dict]:
        """The failed rows (empty when the sweep was clean)."""
        return [run for run in self.runs if run["status"] != "ok"]

    def aggregates(self) -> List[dict]:
        """Mean/min/max of every metric per (scenario, policies, thresholds) group.

        Groups aggregate over the seed axis; failed runs are excluded from the
        statistics but counted in ``failed``.
        """
        groups: Dict[tuple, dict] = {}
        for run in self.runs:
            key = (run["scenario"], run["policies"], run["thresholds"])
            group = groups.setdefault(
                key,
                {
                    "scenario": key[0],
                    "policies": key[1],
                    "thresholds": key[2],
                    "runs": 0,
                    "failed": 0,
                    "metrics": {},
                },
            )
            group["runs"] += 1
            if run["status"] != "ok":
                group["failed"] += 1
                continue
            for metric, value in run["metrics"].items():
                group["metrics"].setdefault(metric, []).append(value)
        rows: List[dict] = []
        for key in sorted(groups):
            group = groups[key]
            summary = {}
            for metric in METRIC_COLUMNS:
                values = group["metrics"].get(metric)
                if not values:
                    continue
                summary[metric] = {
                    "mean": sum(values) / len(values),
                    "min": min(values),
                    "max": max(values),
                }
            rows.append(
                {
                    "scenario": group["scenario"],
                    "policies": group["policies"],
                    "thresholds": group["thresholds"],
                    "runs": group["runs"],
                    "failed": group["failed"],
                    "metrics": summary,
                }
            )
        return rows

    # ----------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Deterministic plain-data form (no wall-clock content)."""
        return {
            "sweep": self.spec.name,
            "description": self.spec.description,
            "spec": self.spec.to_dict(),
            "total_runs": self.total_runs,
            "failed_runs": self.failed,
            "runs": self.runs,
            "aggregates": self.aggregates(),
        }

    def to_json(self, indent: int = 2) -> str:
        """Canonical JSON (sorted keys) -- byte-identical across job counts."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def to_csv(self) -> str:
        """One CSV row per run (identity columns, then the metric columns)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(list(KEY_COLUMNS) + list(METRIC_COLUMNS))
        for run in self.runs:
            row = [
                run["index"],
                run["scenario"],
                run["policies"],
                run["thresholds"],
                run["seed"],
                run["status"],
                run["error"] or "",
            ]
            metrics = run["metrics"] or {}
            row.extend(metrics.get(metric, "") for metric in METRIC_COLUMNS)
            writer.writerow(row)
        return buffer.getvalue()

    def pareto(self, objectives: Sequence[str] = PARETO_OBJECTIVES) -> dict:
        """Pareto-front analysis of this report (see :func:`analyze_report`)."""
        return analyze_report(self.to_dict(), objectives=objectives)


# ------------------------------------------------------------- Pareto analysis
def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (all minimized)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_ranks(vectors: Sequence[Sequence[float]]) -> List[int]:
    """Non-dominated sorting: rank 1 = the Pareto front, peeled repeatedly.

    Rank ``r`` cells are exactly the non-dominated cells once ranks ``< r``
    are removed, so every rank-``r`` cell (``r > 1``) is dominated by at least
    one rank-``r-1`` cell.  Equal vectors share a rank (neither dominates).
    Deterministic and independent of input order by construction.
    """
    n = len(vectors)
    ranks = [0] * n
    remaining = set(range(n))
    rank = 0
    while remaining:
        rank += 1
        front = [
            i
            for i in remaining
            if not any(dominates(vectors[j], vectors[i]) for j in remaining if j != i)
        ]
        if not front:  # pragma: no cover - impossible for a strict partial order
            front = sorted(remaining)
        for i in front:
            ranks[i] = rank
        remaining.difference_update(front)
    return ranks


def analyze_report(
    report: dict, objectives: Sequence[str] = PARETO_OBJECTIVES
) -> dict:
    """Pareto fronts over a report's aggregate cells, per scenario.

    ``report`` is a :meth:`SweepReport.to_dict` dictionary (or the parsed JSON
    a ``sweep run --output`` file holds).  Cells are the aggregate rows --
    one per (scenario, policies, thresholds) group, objective values are the
    group means -- and fronts are computed *within* each scenario, because
    "less energy on a different workload" is not a trade-off.  Cells whose
    every run failed carry ``rank: None`` and never join a front.

    The result is deterministic plain data: cells sorted by (rank, policies,
    thresholds) with unranked cells last, serialized canonically by
    :func:`pareto_json` / :func:`pareto_csv`.
    """
    objectives = tuple(objectives)
    if not objectives:
        raise ValueError("need at least one objective")
    unknown = [name for name in objectives if name not in METRIC_COLUMNS]
    if unknown:
        raise ValueError(
            f"unknown objective(s) {unknown}; valid metrics: {sorted(METRIC_COLUMNS)}"
        )
    aggregates = report.get("aggregates")
    if not isinstance(aggregates, list):
        raise ValueError("not a sweep report: missing 'aggregates' (use sweep run --output)")

    scenarios: Dict[str, List[dict]] = {}
    for group in aggregates:
        scenarios.setdefault(group["scenario"], []).append(group)

    analyzed: Dict[str, dict] = {}
    for scenario in sorted(scenarios):
        groups = sorted(
            scenarios[scenario], key=lambda g: (g["policies"], g["thresholds"])
        )
        ranked = [
            g for g in groups if all(name in g["metrics"] for name in objectives)
        ]
        vectors = [
            [float(g["metrics"][name]["mean"]) for name in objectives] for g in ranked
        ]
        ranks = pareto_ranks(vectors)
        rank_of = {id(g): rank for g, rank in zip(ranked, ranks)}
        cells = [
            {
                "policies": g["policies"],
                "thresholds": g["thresholds"],
                "rank": rank_of.get(id(g)),
                "runs": g["runs"],
                "failed": g["failed"],
                "objectives": {
                    name: float(g["metrics"][name]["mean"])
                    for name in objectives
                    if name in g["metrics"]
                },
            }
            for g in groups
        ]
        cells.sort(
            key=lambda c: (
                c["rank"] is None,
                c["rank"] if c["rank"] is not None else 0,
                c["policies"],
                c["thresholds"],
            )
        )
        analyzed[scenario] = {
            "cells": cells,
            "front": [
                {
                    "policies": c["policies"],
                    "thresholds": c["thresholds"],
                    "objectives": c["objectives"],
                }
                for c in cells
                if c["rank"] == 1
            ],
        }
    return {
        "sweep": report.get("sweep"),
        "objectives": list(objectives),
        "scenarios": analyzed,
    }


def pareto_json(analysis: dict, indent: int = 2) -> str:
    """Canonical JSON (sorted keys) of an :func:`analyze_report` result."""
    return json.dumps(analysis, sort_keys=True, indent=indent)


def pareto_csv(analysis: dict) -> str:
    """One CSV row per analyzed cell: identity, rank, then the objectives."""
    objectives = list(analysis["objectives"])
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["scenario", "policies", "thresholds", "rank"] + objectives)
    for scenario in sorted(analysis["scenarios"]):
        for cell in analysis["scenarios"][scenario]["cells"]:
            writer.writerow(
                [
                    scenario,
                    cell["policies"],
                    cell["thresholds"],
                    "" if cell["rank"] is None else cell["rank"],
                ]
                + [cell["objectives"].get(name, "") for name in objectives]
            )
    return buffer.getvalue()
