"""Distributed sweep execution: a work-pulling coordinator for runner fleets.

The phone-home shape: runners *pull* :class:`~repro.sweeps.spec.RunSpec`
payloads from a socket coordinator, execute them locally through the same
:func:`~repro.sweeps.executor.execute_run` the in-process executors use, and
post the outcomes back.  Workers never need inbound network access, a runner
can join or die at any moment, and the coordinator reassembles outcomes in
run-index order so the final :class:`~repro.sweeps.report.SweepReport` is
byte-identical to the serial executor's for any runner count and any arrival
order.

Robustness vocabulary (mirroring the heartbeat/deadline machinery the
simulated hierarchy uses, see :class:`repro.simulation.batch.DeadlineTable`,
but on wall-clock time):

* every granted cell is a **lease** with a deadline; runners **heartbeat**
  to extend it while they execute;
* a dead runner (dropped connection) or a wedged one (expired lease) has its
  leases **reclaimed** and the cells retried, up to ``max_attempts`` reclaim
  events per cell, after which a deterministic failed outcome is synthesized;
* dispatch is **straggler-aware**: pending cells are granted
  longest-expected-first (explicit ``expected_seconds`` hints, or per-scenario
  wall-clock means learned from completed outcomes), so the tail of the sweep
  is not one giant cell on one runner;
* when the queue drains, idle runners optionally get **speculative**
  re-dispatches of still-leased cells (outcomes are deterministic, so the
  first posted result wins and duplicates are discarded by run position).

:class:`DistributedExecutor` packages all of this behind the ordinary
``executor.map(payloads)`` contract, spawning loopback runner subprocesses,
so ``run_sweep(spec, runners=4)`` is a drop-in alternative to ``jobs=4``.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.sweeps.wire import FrameError, read_frame, write_frame

#: Protocol version stamped into hello/welcome frames.
PROTOCOL_VERSION = 1

#: Seconds an idle runner is told to wait before pulling again.
IDLE_RETRY_SECONDS = 0.05

#: Maximum concurrent leases per cell (the original plus one speculative copy).
MAX_LEASES_PER_CELL = 2

#: Fallback expected wall seconds for a cell with no hint and no learned prior.
DEFAULT_EXPECTED_SECONDS = 1.0


class SweepAborted(RuntimeError):
    """The coordinator gave up before every cell completed."""


def synthesize_lease_failure(payload: dict, attempts: int) -> dict:
    """The deterministic failed outcome recorded when a cell exhausts its retries.

    Shaped exactly like an :func:`~repro.sweeps.executor.execute_run` failure
    (same keys), with ``wall_seconds`` pinned to 0.0 so report timing never
    depends on how long the doomed leases lingered.
    """
    return {
        "run": payload,
        "status": "failed",
        "result": None,
        "error": f"LeaseExpired: no runner completed this cell in {attempts} attempts",
        "traceback": None,
        "wall_seconds": 0.0,
    }


class _Lease:
    """One granted cell: who holds it and until when."""

    __slots__ = ("lease_id", "position", "runner", "deadline", "speculative")

    def __init__(self, lease_id: str, position: int, runner: str, deadline: float,
                 speculative: bool) -> None:
        self.lease_id = lease_id
        self.position = position
        self.runner = runner
        self.deadline = deadline
        self.speculative = speculative


class SweepCoordinator:
    """Serve sweep cells to pulling runners; collect outcomes in order.

    Single-threaded inside one asyncio event loop: every state transition
    (grant, heartbeat, reclaim, record) runs on the loop, so there is no
    locking, and the ``stats`` counters can be read from other threads as a
    consistent-enough snapshot for tests and progress displays.
    """

    def __init__(
        self,
        payloads: Sequence[dict],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_seconds: float = 30.0,
        max_attempts: int = 4,
        speculate: bool = True,
        speculate_after_seconds: float = 0.0,
        expected_seconds: Optional[Sequence[float]] = None,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._payloads = [dict(payload) for payload in payloads]
        if expected_seconds is not None and len(expected_seconds) != len(self._payloads):
            raise ValueError("expected_seconds must align with payloads")
        self._hints = None if expected_seconds is None else [float(s) for s in expected_seconds]
        self._host = host
        self._port = port
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.speculate = bool(speculate)
        self.speculate_after_seconds = float(speculate_after_seconds)

        n = len(self._payloads)
        self._pending: Set[int] = set(range(n))
        self._outcomes: Dict[int, dict] = {}
        self._leases: Dict[str, _Lease] = {}
        self._active: Dict[int, Set[str]] = {}
        self._granted_at: Dict[int, float] = {}
        self._reclaims: Dict[int, int] = {}
        self._scenario_walls: Dict[str, List[float]] = {}
        self._lease_seq = 0
        #: Monotonic counters for tests/progress; merged into report timing by
        #: :class:`DistributedExecutor`.
        self.stats: Dict[str, int] = {
            "runners_seen": 0,
            "leases_granted": 0,
            "speculative_leases": 0,
            "heartbeats": 0,
            "reclaimed_expired": 0,
            "reclaimed_disconnect": 0,
            "retries": 0,
            "duplicates_discarded": 0,
            "synthesized_failures": 0,
        }

        self._server: Optional[asyncio.AbstractServer] = None
        self._reaper: Optional[asyncio.Task] = None
        self._handlers: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._done = asyncio.Event()
        self._abort_reason: Optional[str] = None
        if not self._payloads:
            self._done.set()

    # ---------------------------------------------------------------- lifecycle
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("coordinator not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def done(self) -> bool:
        """True once every cell has an outcome (or the sweep was aborted)."""
        return self._done.is_set()

    @property
    def completed(self) -> int:
        """Number of cells with a recorded outcome."""
        return len(self._outcomes)

    async def start(self) -> Tuple[str, int]:
        """Bind the server and start the lease reaper; returns the address."""
        if self._server is not None:
            raise RuntimeError("coordinator already started")
        self._server = await asyncio.start_server(self._handle, self._host, self._port)
        self._reaper = asyncio.create_task(self._reap_forever())
        return self.address

    async def wait(self, timeout: Optional[float] = None) -> List[dict]:
        """Block until every cell has an outcome; outcomes in payload order."""
        if timeout is None:
            await self._done.wait()
        else:
            await asyncio.wait_for(self._done.wait(), timeout)
        if self._abort_reason is not None:
            raise SweepAborted(self._abort_reason)
        return [self._outcomes[position] for position in range(len(self._payloads))]

    def abort(self, reason: str) -> None:
        """Fail :meth:`wait` callers; pulls are answered with ``shutdown``."""
        if not self._done.is_set():
            self._abort_reason = reason
            self._done.set()

    async def stop(self) -> None:
        """Close the server, the reaper and every live runner connection."""
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Cancel connection handlers before the loop closes: a handler parked
        # in read_frame() would otherwise be destroyed pending and spray
        # CancelledError noise at interpreter shutdown.
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()

    # ---------------------------------------------------------------- scheduling
    def _expected(self, position: int) -> float:
        """Expected wall seconds of a cell: hint, else learned scenario mean."""
        if self._hints is not None:
            return self._hints[position]
        scenario = self._payloads[position].get("scenario")
        walls = self._scenario_walls.get(scenario)
        if walls:
            return sum(walls) / len(walls)
        return DEFAULT_EXPECTED_SECONDS

    def _pick(self, candidates: Set[int]) -> int:
        """Longest-expected-first with the run position as a deterministic tie-break."""
        return max(candidates, key=lambda position: (self._expected(position), -position))

    def _grant(self, runner: str, conn_leases: Set[str]) -> Optional[dict]:
        """A lease reply for one pull, or ``None`` when there is nothing to grant."""
        now = time.monotonic()
        speculative = False
        if self._pending:
            position = self._pick(self._pending)
            self._pending.discard(position)
        elif self.speculate:
            candidates = {
                position
                for position, lease_ids in self._active.items()
                if position not in self._outcomes
                and 0 < len(lease_ids) < MAX_LEASES_PER_CELL
                and all(self._leases[lid].runner != runner for lid in lease_ids)
                and now - self._granted_at.get(position, now) >= self.speculate_after_seconds
            }
            if not candidates:
                return None
            position = self._pick(candidates)
            speculative = True
        else:
            return None

        self._lease_seq += 1
        lease = _Lease(
            lease_id=f"lease-{self._lease_seq}",
            position=position,
            runner=runner,
            deadline=now + self.lease_seconds,
            speculative=speculative,
        )
        self._leases[lease.lease_id] = lease
        self._active.setdefault(position, set()).add(lease.lease_id)
        self._granted_at.setdefault(position, now)
        conn_leases.add(lease.lease_id)
        self.stats["leases_granted"] += 1
        if speculative:
            self.stats["speculative_leases"] += 1
        return {
            "type": "lease",
            "lease_id": lease.lease_id,
            "run_id": position,
            "run": self._payloads[position],
            "lease_seconds": self.lease_seconds,
            "heartbeat_seconds": self.lease_seconds / 3.0,
            "speculative": speculative,
        }

    def _release_lease(self, lease_id: str) -> Optional[_Lease]:
        lease = self._leases.pop(lease_id, None)
        if lease is not None:
            active = self._active.get(lease.position)
            if active is not None:
                active.discard(lease_id)
                if not active:
                    del self._active[lease.position]
        return lease

    def _reclaim(self, lease_id: str, reason: str) -> None:
        """A lease died (deadline expired or its connection dropped): retry or fail."""
        lease = self._release_lease(lease_id)
        if lease is None:
            return
        self.stats[f"reclaimed_{reason}"] += 1
        position = lease.position
        if position in self._outcomes:
            return  # a speculative twin already delivered
        self._reclaims[position] = self._reclaims.get(position, 0) + 1
        if position in self._active or position in self._pending:
            return  # another live lease (or a queued retry) still covers the cell
        if self._reclaims[position] >= self.max_attempts:
            self.stats["synthesized_failures"] += 1
            self._record_outcome(
                position, synthesize_lease_failure(self._payloads[position], self._reclaims[position])
            )
        else:
            self.stats["retries"] += 1
            self._granted_at.pop(position, None)
            self._pending.add(position)

    def _record_outcome(self, position: int, outcome: dict) -> bool:
        """First outcome for a position wins; returns False for duplicates."""
        if position in self._outcomes:
            self.stats["duplicates_discarded"] += 1
            return False
        self._outcomes[position] = outcome
        self._pending.discard(position)
        # Release every remaining lease on the cell (speculative twins): their
        # eventual posts are discarded as duplicates, never counted as reclaims.
        for lease_id in list(self._active.get(position, ())):
            self._release_lease(lease_id)
        wall = outcome.get("wall_seconds")
        scenario = (outcome.get("run") or {}).get("scenario")
        if outcome.get("status") == "ok" and isinstance(wall, (int, float)) and scenario is not None:
            self._scenario_walls.setdefault(scenario, []).append(float(wall))
        if len(self._outcomes) == len(self._payloads):
            self._done.set()
        return True

    async def _reap_forever(self) -> None:
        interval = max(0.02, self.lease_seconds / 4.0)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            expired = [
                lease.lease_id for lease in self._leases.values() if lease.deadline < now
            ]
            for lease_id in expired:
                self._reclaim(lease_id, "expired")

    # ------------------------------------------------------------------ protocol
    def _dispatch(self, message: dict, conn_leases: Set[str]) -> dict:
        kind = message.get("type")
        if kind == "hello":
            self.stats["runners_seen"] += 1
            return {
                "type": "welcome",
                "protocol": PROTOCOL_VERSION,
                "runs": len(self._payloads),
            }
        if kind == "pull":
            if self._done.is_set():
                return {"type": "shutdown"}
            reply = self._grant(str(message.get("runner", "?")), conn_leases)
            if reply is None:
                return {"type": "idle", "retry_seconds": IDLE_RETRY_SECONDS}
            return reply
        if kind == "heartbeat":
            lease = self._leases.get(message.get("lease_id"))
            if lease is None:
                return {"type": "ack", "known": False}
            lease.deadline = time.monotonic() + self.lease_seconds
            self.stats["heartbeats"] += 1
            return {"type": "ack", "known": True}
        if kind == "outcome":
            lease_id = message.get("lease_id")
            lease = self._release_lease(lease_id)
            conn_leases.discard(lease_id)
            position = message.get("run_id", lease.position if lease else None)
            outcome = message.get("outcome")
            if (
                not isinstance(position, int)
                or not 0 <= position < len(self._payloads)
                or not isinstance(outcome, dict)
            ):
                return {"type": "ack", "accepted": False}
            # Outcomes are accepted by position even when the lease was already
            # reclaimed: runs are deterministic, so a late result is as good as
            # a retried one and the wasted retry just loses the race.
            accepted = self._record_outcome(position, outcome)
            return {"type": "ack", "accepted": accepted}
        return {"type": "error", "error": f"unknown message type {kind!r}"}

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._writers.add(writer)
        conn_leases: Set[str] = set()
        try:
            while True:
                message = await read_frame(reader)
                if message is None:
                    break
                await write_frame(writer, self._dispatch(message, conn_leases))
        except (FrameError, ConnectionError, asyncio.IncompleteReadError, asyncio.CancelledError):
            pass  # dropped runner (or coordinator shutdown): leases reclaimed below
        finally:
            for lease_id in list(conn_leases):
                if lease_id in self._leases:
                    self._reclaim(lease_id, "disconnect")
            self._writers.discard(writer)
            writer.close()
            if task is not None:
                self._handlers.discard(task)


# ------------------------------------------------------------------ blocking APIs
def collect_outcomes(
    coordinator: SweepCoordinator,
    *,
    timeout: Optional[float] = None,
    on_bound: Optional[Callable[[Tuple[str, int]], None]] = None,
) -> List[dict]:
    """Run ``coordinator`` to completion on a fresh event loop (blocking).

    ``on_bound`` is invoked with the bound ``(host, port)`` once the server is
    listening -- the CLI uses it to announce the address runners should
    ``sweep work --connect`` to.
    """

    async def _main() -> List[dict]:
        await coordinator.start()
        if on_bound is not None:
            on_bound(coordinator.address)
        try:
            return await coordinator.wait(timeout=timeout)
        finally:
            await coordinator.stop()

    return asyncio.run(_main())


class CoordinatorThread:
    """A coordinator running on a background thread (context manager).

    Used by tests and anything else that needs to drive runner clients from
    the calling thread while the coordinator serves.  ``address`` blocks until
    the server is bound; :meth:`result` joins and returns the outcome list
    (re-raising coordinator failures).
    """

    def __init__(self, coordinator: SweepCoordinator, *, timeout: Optional[float] = None) -> None:
        self.coordinator = coordinator
        self._timeout = timeout
        self._bound = threading.Event()
        self._address: Optional[Tuple[str, int]] = None
        self._outcomes: Optional[List[dict]] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            self._outcomes = collect_outcomes(
                self.coordinator, timeout=self._timeout, on_bound=self._on_bound
            )
        except BaseException as exc:  # noqa: BLE001 - re-raised in result()
            self._error = exc
            self._bound.set()

    def _on_bound(self, address: Tuple[str, int]) -> None:
        self._address = address
        self._bound.set()

    def __enter__(self) -> "CoordinatorThread":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.coordinator.abort("coordinator thread exited")
        self._thread.join(timeout=10.0)

    @property
    def address(self) -> Tuple[str, int]:
        self._bound.wait(timeout=10.0)
        if self._address is None:
            raise RuntimeError("coordinator failed to bind") from self._error
        return self._address

    def result(self, timeout: Optional[float] = None) -> List[dict]:
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise TimeoutError("coordinator still running")
        if self._error is not None:
            raise self._error
        assert self._outcomes is not None
        return self._outcomes


# -------------------------------------------------------------- loopback runners
def _loopback_env(extra: Optional[dict] = None) -> dict:
    """A subprocess environment in which ``import repro`` resolves to this tree."""
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    if extra:
        env.update({str(key): str(value) for key, value in extra.items()})
    return env


def spawn_loopback_runner(
    address: Tuple[str, int],
    *,
    runner_id: Optional[str] = None,
    env: Optional[dict] = None,
) -> subprocess.Popen:
    """Start one runner subprocess connected to ``address`` (stdio discarded)."""
    host, port = address
    argv = [sys.executable, "-m", "repro.sweeps.runner", "--connect", f"{host}:{port}"]
    if runner_id:
        argv += ["--id", runner_id]
    return subprocess.Popen(
        argv,
        env=_loopback_env(env),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class DistributedExecutor:
    """Run sweep cells on a fleet of loopback runner subprocesses.

    Satisfies the same ``map(payloads) -> outcomes`` contract as
    :class:`~repro.sweeps.executor.SerialExecutor` /
    :class:`~repro.sweeps.executor.MultiprocessExecutor`, so it plugs straight
    into :func:`~repro.sweeps.engine.run_sweep`.  Outcomes come back in
    payload order and the report built from them is byte-identical to the
    serial executor's (the tests assert this, including under injected runner
    kills).

    ``runner_env`` optionally carries one environment-override dict per runner
    (``None`` entries keep the default); the fault-injection tests use it to
    make a runner die or wedge mid-lease via ``REPRO_SWEEP_RUNNER_FAULT``.
    """

    def __init__(
        self,
        runners: int = 2,
        *,
        lease_seconds: float = 30.0,
        max_attempts: int = 4,
        speculate: bool = True,
        speculate_after_seconds: float = 0.0,
        expected_seconds: Optional[Sequence[float]] = None,
        runner_env: Optional[Sequence[Optional[dict]]] = None,
        timeout: Optional[float] = None,
    ) -> None:
        if runners < 1:
            raise ValueError("DistributedExecutor needs runners >= 1")
        if runner_env is not None and len(runner_env) != runners:
            raise ValueError("runner_env must carry one entry per runner")
        self.runners = int(runners)
        #: Reported into ``SweepReport.timing['jobs']`` by ``run_sweep``.
        self.jobs = self.runners
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.speculate = bool(speculate)
        self.speculate_after_seconds = float(speculate_after_seconds)
        self.expected_seconds = expected_seconds
        self.runner_env = list(runner_env) if runner_env is not None else None
        self.timeout = timeout
        #: Coordinator counters of the last ``map`` call (for benchmarks/tests).
        self.last_stats: Dict[str, int] = {}

    def map(self, payloads: Sequence[dict]) -> List[dict]:
        """Outcomes for ``payloads``, in order, computed by the runner fleet."""
        payloads = list(payloads)
        if not payloads:
            return []
        return asyncio.run(self._map_async(payloads))

    async def _map_async(self, payloads: List[dict]) -> List[dict]:
        coordinator = SweepCoordinator(
            payloads,
            lease_seconds=self.lease_seconds,
            max_attempts=self.max_attempts,
            speculate=self.speculate,
            speculate_after_seconds=self.speculate_after_seconds,
            expected_seconds=self.expected_seconds,
        )
        await coordinator.start()
        procs: List[subprocess.Popen] = []
        watchdog: Optional[asyncio.Task] = None
        try:
            for index in range(self.runners):
                extra = self.runner_env[index] if self.runner_env else None
                procs.append(
                    spawn_loopback_runner(
                        coordinator.address, runner_id=f"runner-{index}", env=extra
                    )
                )
            watchdog = asyncio.create_task(self._watch(procs, coordinator))
            return await coordinator.wait(timeout=self.timeout)
        finally:
            if watchdog is not None:
                watchdog.cancel()
            self.last_stats = dict(coordinator.stats)
            await coordinator.stop()
            self._terminate(procs)

    @staticmethod
    async def _watch(procs: List[subprocess.Popen], coordinator: SweepCoordinator) -> None:
        """Abort instead of hanging forever when the whole fleet is gone."""
        while True:
            await asyncio.sleep(0.2)
            if coordinator.done:
                return
            if all(proc.poll() is not None for proc in procs):
                coordinator.abort(
                    "all runner processes exited before the sweep completed "
                    f"(exit codes: {[proc.returncode for proc in procs]})"
                )
                return

    @staticmethod
    def _terminate(procs: List[subprocess.Popen]) -> None:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
