"""The named sweep catalog and its registry.

Mirrors the scenario catalog: a sweep registers a zero-argument factory under
the name of the :class:`~repro.sweeps.spec.SweepSpec` it produces, and the CLI
(``repro-sim sweep``), the smoke jobs and the benchmark harness resolve sweeps
through this registry.

Sizing note: every entry is dialed so the whole grid runs in well under a
minute serially on a laptop; the axes are plain data, so callers can scale any
of them up through ``SweepSpec.from_dict`` overrides.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

from repro.policies.registry import policy_names
from repro.sweeps.spec import SweepSpec

_REGISTRY: Dict[str, Callable[[], SweepSpec]] = {}


def register_sweep(factory: Callable[[], SweepSpec]) -> Callable[[], SweepSpec]:
    """Register a sweep factory under the name of the spec it produces.

    Usable as a decorator.  The factory is invoked once at registration to
    validate the spec and learn its name; duplicate names are rejected.
    """
    spec = factory()
    if spec.name in _REGISTRY:
        raise ValueError(f"sweep {spec.name!r} already registered")
    _REGISTRY[spec.name] = factory
    return factory


def sweep_names() -> List[str]:
    """Sorted names of every registered sweep."""
    return sorted(_REGISTRY)


def get_sweep(name: str) -> SweepSpec:
    """A fresh spec for ``name``; raises ``KeyError`` with suggestions if unknown."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep {name!r}; available: {', '.join(sweep_names())}"
        ) from None
    return factory()


def iter_sweeps() -> Iterator[SweepSpec]:
    """Fresh specs for every catalog entry, in name order."""
    for name in sweep_names():
        yield get_sweep(name)


# --------------------------------------------------------------------- catalog
@register_sweep
def _smoke_2x2() -> SweepSpec:
    """Two scenarios x two placement policies: the fast end-to-end smoke grid."""
    return SweepSpec(
        name="smoke-2x2",
        description=(
            "2x2 smoke grid: flash-crowd and steady-churn under default vs "
            "best-fit placement, one seed, short runs; exercises the whole "
            "sweep pipeline in a few seconds."
        ),
        scenarios=["flash-crowd", "steady-churn"],
        policies=[{}, {"placement": {"name": "best-fit"}}],
        seeds=[2012],
        duration=600.0,
    )


@register_sweep
def _paper_e5_grid() -> SweepSpec:
    """The energy-savings grid: diurnal load across a threshold grid x seeds."""
    return SweepSpec(
        name="paper-e5-grid",
        description=(
            "Reproduces the shape of the paper's energy-savings experiment "
            "(E5) as a grid: the diurnal-datacenter scenario swept over an "
            "underload/overload threshold grid with spawn-derived replicate "
            "seeds; reports energy, migrations and SLA violations per cell."
        ),
        scenarios=["diurnal-datacenter"],
        thresholds=[
            {"underload": 0.2, "overload": 0.85},
            {"underload": 0.3, "overload": 0.8},
            {"underload": 0.4, "overload": 0.75},
        ],
        replicates=2,
        base_seed=2012,
        duration=3600.0,
    )


@register_sweep
def _policy_matrix() -> SweepSpec:
    """Every placement policy crossed with every reconfiguration policy."""
    # The matrix is built from the live registry, so newly registered policies
    # join the sweep automatically.  ACO-family cells get small colony sizes to
    # keep each cell a sub-second run.
    tuned_params: Dict[str, Dict[str, object]] = {
        "aco": {"n_ants": 4, "n_cycles": 8},
        "distributed-aco": {"n_partitions": 2, "n_ants": 4, "n_cycles": 8},
    }
    cells = []
    for placement in policy_names("placement"):
        for reconfiguration in policy_names("reconfiguration"):
            entry: Dict[str, object] = {"name": reconfiguration}
            entry.update(tuned_params.get(reconfiguration, {}))
            cells.append(
                {
                    "placement": {"name": placement},
                    "reconfiguration": entry,
                }
            )
    return SweepSpec(
        name="policy-matrix",
        description=(
            "Crosses every registered placement policy with every registered "
            "reconfiguration policy over churn scenarios, with periodic "
            "reconfiguration enabled so the consolidation axis matters."
        ),
        scenarios=["steady-churn", "flash-crowd"],
        policies=cells,
        seeds=[2012],
        duration=900.0,
        config={"reconfiguration_interval": 450.0, "max_migrations_per_round": 4},
    )
