"""The one-call sweep entry point: expand, execute, aggregate."""

from __future__ import annotations

import time

from repro.sweeps.executor import make_executor
from repro.sweeps.report import SweepReport
from repro.sweeps.spec import SweepSpec


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    executor=None,
    runners: int = 0,
) -> SweepReport:
    """Execute every cell of ``spec`` and return the aggregated report.

    ``jobs`` selects the local backend (1 = in-process serial, >1 =
    multiprocessing pool); ``runners`` >= 1 instead fans the cells out to that
    many loopback runner subprocesses through a
    :class:`~repro.sweeps.distributed.DistributedExecutor`; an explicit
    ``executor`` (anything with a ``map(payloads)`` method) overrides both.
    The report's deterministic content is independent of the backend;
    wall-clock timing is reported separately in ``report.timing``.
    """
    if executor is None:
        if runners >= 1:
            if jobs != 1:
                raise ValueError("pass either jobs or runners, not both")
            from repro.sweeps.distributed import DistributedExecutor

            executor = DistributedExecutor(runners=runners)
        else:
            executor = make_executor(jobs)
    runs = spec.expand()
    start = time.perf_counter()
    outcomes = executor.map([run.to_dict() for run in runs])
    wall = time.perf_counter() - start
    return SweepReport.from_outcomes(
        spec,
        outcomes,
        jobs=getattr(executor, "jobs", jobs),
        wall_seconds=wall,
    )
