"""The one-call sweep entry point: expand, execute, aggregate."""

from __future__ import annotations

import time

from repro.sweeps.executor import make_executor
from repro.sweeps.report import SweepReport
from repro.sweeps.spec import SweepSpec


def run_sweep(spec: SweepSpec, jobs: int = 1, executor=None) -> SweepReport:
    """Execute every cell of ``spec`` and return the aggregated report.

    ``jobs`` selects the backend (1 = in-process serial, >1 = multiprocessing
    pool); an explicit ``executor`` (anything with a ``map(payloads)`` method)
    overrides it.  The report's deterministic content is independent of the
    backend; wall-clock timing is reported separately in ``report.timing``.
    """
    if executor is None:
        executor = make_executor(jobs)
    runs = spec.expand()
    start = time.perf_counter()
    outcomes = executor.map([run.to_dict() for run in runs])
    wall = time.perf_counter() - start
    return SweepReport.from_outcomes(
        spec,
        outcomes,
        jobs=getattr(executor, "jobs", jobs),
        wall_seconds=wall,
    )
