"""Declarative sweep specifications.

A :class:`SweepSpec` describes a whole *grid* of experiments the way a
:class:`~repro.scenarios.spec.ScenarioSpec` describes one: as plain data that
round-trips losslessly through JSON.  The grid is the cross product of four
axes:

* **scenarios** -- names resolved through the scenario catalog;
* **policies** -- policy-override cells (``{kind: {"name": ..., **params}}``
  blocks merged over each scenario's own ``policies`` section);
* **thresholds** -- ``{"underload": ..., "overload": ...}`` overrides of the
  utilization thresholds (``None`` keeps the scenario's configuration);
* **seeds** -- either an explicit seed list, or ``replicates``/``base_seed``,
  in which case the per-replicate seeds are derived through
  ``numpy.random.SeedSequence.spawn`` (never ``base_seed + i``), so replicate
  streams cannot silently correlate.

:meth:`SweepSpec.expand` enumerates the grid into :class:`RunSpec` cells in a
deterministic order (scenario, then policy cell, then thresholds, then seed),
which is what lets the serial and parallel executors produce byte-identical
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.policies.registry import merge_policy_selections, validate_policy_selection
from repro.policies.thresholds import UtilizationThresholds
from repro.scenarios.catalog import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.simulation.randomness import derive_run_seeds

#: Label used for an empty policy-override cell.
DEFAULTS_LABEL = "defaults"


def _compact_number(value: object) -> str:
    """``%g``-style rendering for numbers, ``str`` otherwise, ``?`` if absent."""
    if value is None:
        return "?"
    if isinstance(value, (int, float)):
        return format(value, "g")
    return str(value)


def policy_cell_label(cell: Dict[str, Dict[str, object]]) -> str:
    """Human/CSV label of one policy-override cell (stable across runs).

    Parameters are part of the label: cells selecting the same policy with
    different parameters (a parameter sweep) must land in different aggregate
    groups, never be pooled under one name.  Malformed entries (label callers
    include the report layer, which must never crash on a failed run's
    payload) render with ``?`` placeholders instead of raising.
    """
    if not cell:
        return DEFAULTS_LABEL
    parts = []
    for kind in sorted(cell):
        entry = cell[kind]
        if not isinstance(entry, dict):
            parts.append(f"{kind}={entry!r}")
            continue
        params = {key: entry[key] for key in sorted(entry) if key != "name"}
        suffix = (
            "[" + ",".join(f"{key}={value}" for key, value in params.items()) + "]"
            if params
            else ""
        )
        parts.append(f"{kind}={entry.get('name', '?')}{suffix}")
    return ",".join(parts)


def thresholds_label(thresholds: Optional[Dict[str, float]]) -> str:
    """Label of one thresholds cell (``-`` when the scenario default is kept)."""
    if thresholds is None:
        return "-"
    if not isinstance(thresholds, dict):
        return str(thresholds)
    return (
        f"{_compact_number(thresholds.get('underload'))}/"
        f"{_compact_number(thresholds.get('overload'))}"
    )


@dataclass(frozen=True)
class RunSpec:
    """One fully resolved cell of a sweep grid (picklable, JSON-safe)."""

    index: int
    scenario: str
    policies: Dict[str, Dict[str, object]]
    thresholds: Optional[Dict[str, float]]
    base_seed: int
    #: The seed actually handed to :class:`~repro.scenarios.runner.ScenarioRunner`.
    seed: int
    duration: Optional[float] = None
    record_interval: Optional[float] = None
    config: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-data form (shipped to executor workers)."""
        return {
            "index": self.index,
            "scenario": self.scenario,
            "policies": {kind: dict(entry) for kind, entry in self.policies.items()},
            "thresholds": dict(self.thresholds) if self.thresholds is not None else None,
            "base_seed": self.base_seed,
            "seed": self.seed,
            "duration": self.duration,
            "record_interval": self.record_interval,
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Inverse of :meth:`to_dict`."""
        thresholds = data.get("thresholds")
        duration = data.get("duration")
        record_interval = data.get("record_interval")
        return cls(
            index=int(data["index"]),
            scenario=str(data["scenario"]),
            policies={
                str(kind): dict(entry)
                for kind, entry in dict(data.get("policies", {})).items()
            },
            thresholds=None if thresholds is None else dict(thresholds),
            base_seed=int(data["base_seed"]),
            seed=int(data["seed"]),
            duration=None if duration is None else float(duration),
            record_interval=None if record_interval is None else float(record_interval),
            config=dict(data.get("config", {})),
        )

    def build_scenario_spec(self) -> ScenarioSpec:
        """Materialize the catalog scenario with this cell's overrides applied."""
        base = get_scenario(self.scenario)
        merged_policies = merge_policy_selections(base.policies, self.policies)
        merged_config = dict(base.config)
        merged_config.update(self.config)
        if self.thresholds is not None:
            merged_config["thresholds"] = dict(self.thresholds)
        return ScenarioSpec.from_dict(
            {**base.to_dict(), "policies": merged_policies, "config": merged_config}
        )


@dataclass
class SweepSpec:
    """A declarative experiment grid over the scenario catalog."""

    name: str
    description: str = ""
    #: Scenario catalog names (axis 1).
    scenarios: List[str] = field(default_factory=list)
    #: Policy-override cells (axis 2); the empty dict keeps scenario defaults.
    policies: List[Dict[str, Dict[str, object]]] = field(default_factory=lambda: [{}])
    #: Threshold overrides (axis 3); ``None`` keeps the scenario configuration.
    thresholds: List[Optional[Dict[str, float]]] = field(default_factory=lambda: [None])
    #: Explicit seed axis (axis 4); ignored when ``replicates`` is set.
    seeds: List[int] = field(default_factory=lambda: [0])
    #: When set, the seed axis becomes ``derive_run_seeds(base_seed, replicates)``
    #: (``SeedSequence.spawn``-derived, independent across replicates).
    replicates: Optional[int] = None
    base_seed: int = 0
    #: Common duration override applied to every run (``None`` = scenario value).
    duration: Optional[float] = None
    record_interval: Optional[float] = None
    #: Flat ``HierarchyConfig`` overrides merged into every run's scenario config.
    config: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sweep needs a name")
        if not self.scenarios:
            raise ValueError("sweep needs at least one scenario")
        if not self.policies:
            raise ValueError("sweep needs at least one policy cell (use {} for defaults)")
        if not self.thresholds:
            raise ValueError("sweep needs at least one thresholds cell (use None for defaults)")
        if self.replicates is not None and self.replicates <= 0:
            raise ValueError("replicates must be positive")
        if self.replicates is None and not self.seeds:
            raise ValueError("sweep needs at least one seed (or set replicates)")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration override must be positive")
        if self.record_interval is not None and self.record_interval <= 0:
            raise ValueError("record_interval override must be positive")
        for cell in self.policies:
            for kind, entry in cell.items():
                validate_policy_selection(kind, entry)
        for thresholds in self.thresholds:
            if thresholds is None:
                continue
            missing = {"underload", "overload"} - set(thresholds)
            if missing:
                raise ValueError(f"thresholds cell needs {sorted(missing)}, got {thresholds!r}")
            unknown = set(thresholds) - {"underload", "overload"}
            if unknown:
                raise ValueError(
                    f"unknown thresholds key(s) {sorted(unknown)}; "
                    "valid keys: ['overload', 'underload']"
                )
            UtilizationThresholds(**{k: float(v) for k, v in thresholds.items()})
        # Normalize threshold values to floats in place: whatever construction
        # path delivered them (JSON strings included), downstream labels and
        # config overrides must never see non-numeric values.
        self.thresholds = [
            None if cell is None else {k: float(v) for k, v in cell.items()}
            for cell in self.thresholds
        ]
        # Resolve every scenario now (unknown names fail fast with suggestions)
        # and verify the duration override does not drop timeline events.
        for scenario_name in self.scenarios:
            try:
                base = get_scenario(scenario_name)
            except KeyError as exc:
                raise ValueError(exc.args[0]) from None
            if self.duration is not None:
                late = base.timeline_events_after(self.duration)
                if late:
                    raise ValueError(
                        f"duration override {self.duration} would drop {len(late)} timeline "
                        f"event(s) of scenario {scenario_name!r} "
                        f"(first at t={min(event.at for event in late)})"
                    )
        # Dry-build one merged spec per (scenario, policy cell) so bad override
        # combinations surface at sweep construction, not mid-execution.
        for scenario_name in self.scenarios:
            for cell in self.policies:
                RunSpec(
                    index=-1,
                    scenario=scenario_name,
                    policies=cell,
                    thresholds=None,
                    base_seed=0,
                    seed=0,
                    config=dict(self.config),
                ).build_scenario_spec()

    # ------------------------------------------------------------------- axes
    def resolved_seeds(self) -> List[int]:
        """The effective seed axis (spawn-derived when ``replicates`` is set)."""
        if self.replicates is not None:
            return derive_run_seeds(self.base_seed, self.replicates)
        return [int(seed) for seed in self.seeds]

    def total_runs(self) -> int:
        """Size of the run matrix."""
        return (
            len(self.scenarios)
            * len(self.policies)
            * len(self.thresholds)
            * len(self.resolved_seeds())
        )

    def expand(self) -> List[RunSpec]:
        """Enumerate the grid into :class:`RunSpec` cells (deterministic order)."""
        runs: List[RunSpec] = []
        seeds = self.resolved_seeds()
        index = 0
        for scenario_name in self.scenarios:
            for cell in self.policies:
                for thresholds in self.thresholds:
                    for position, seed in enumerate(seeds):
                        base_seed = (
                            self.base_seed if self.replicates is not None
                            else self.seeds[position]
                        )
                        runs.append(
                            RunSpec(
                                index=index,
                                scenario=scenario_name,
                                policies={k: dict(v) for k, v in cell.items()},
                                thresholds=None if thresholds is None else dict(thresholds),
                                base_seed=int(base_seed),
                                seed=int(seed),
                                duration=self.duration,
                                record_interval=self.record_interval,
                                config=dict(self.config),
                            )
                        )
                        index += 1
        return runs

    # ----------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Plain-data form; ``SweepSpec.from_dict(spec.to_dict()) == spec``."""
        return {
            "name": self.name,
            "description": self.description,
            "scenarios": list(self.scenarios),
            "policies": [
                {kind: dict(entry) for kind, entry in cell.items()} for cell in self.policies
            ],
            "thresholds": [
                None if cell is None else dict(cell) for cell in self.thresholds
            ],
            "seeds": list(self.seeds),
            "replicates": self.replicates,
            "base_seed": self.base_seed,
            "duration": self.duration,
            "record_interval": self.record_interval,
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Inverse of :meth:`to_dict` (accepts JSON-decoded dictionaries)."""
        replicates = data.get("replicates")
        duration = data.get("duration")
        record_interval = data.get("record_interval")
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            scenarios=[str(name) for name in data.get("scenarios", [])],
            policies=[
                {str(kind): dict(entry) for kind, entry in dict(cell).items()}
                for cell in data.get("policies", [{}])
            ],
            thresholds=[
                None if cell is None else dict(cell)
                for cell in data.get("thresholds", [None])
            ],
            seeds=[int(seed) for seed in data.get("seeds", [0])],
            replicates=None if replicates is None else int(replicates),
            base_seed=int(data.get("base_seed", 0)),
            duration=None if duration is None else float(duration),
            record_interval=None if record_interval is None else float(record_interval),
            config=dict(data.get("config", {})),
        )
