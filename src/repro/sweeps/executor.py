"""Sweep execution: serial and multiprocessing backends with failure isolation.

Both executors consume the payload dictionaries produced by
:meth:`~repro.sweeps.spec.RunSpec.to_dict` and return one *outcome* dictionary
per run, in run-index order:

``{"run": <payload>, "status": "ok"|"failed", "result": <ScenarioResult dict>,
"error": <str|None>, "wall_seconds": <float>}``

Design points:

* **Failure isolation** -- :func:`execute_run` catches any exception a run
  raises and folds it into a ``failed`` outcome, so one bad cell never kills
  the sweep (the report lists it, the CLI exits non-zero).
* **Determinism** -- the run seed travels inside the payload (derived once at
  expansion time via ``SeedSequence.spawn``); workers never re-derive
  randomness, so ``jobs=1`` and ``jobs=N`` produce identical outcome lists.
* **Picklability** -- :func:`execute_run` is a module-level function over plain
  dictionaries, which keeps both ``fork`` and ``spawn`` start methods working.
* **Wall clock** -- ``wall_seconds`` is measured per run for the benchmark
  harness, but it is *excluded* from the deterministic report serialization
  (see :mod:`repro.sweeps.report`).
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from typing import Dict, List, Optional, Sequence

from repro.scenarios.runner import ScenarioRunner
from repro.sweeps.spec import RunSpec

#: Upper bound on the traceback text carried in a failed outcome.  Tracebacks
#: are a debugging aid shipped back from (possibly remote) workers; the *tail*
#: is the informative end, so truncation drops leading frames.
TRACEBACK_LIMIT_CHARS = 4000


def _truncated_traceback() -> str:
    """The current exception's traceback, tail-truncated for transport."""
    text = traceback.format_exc()
    if len(text) > TRACEBACK_LIMIT_CHARS:
        text = "... [truncated] ...\n" + text[-TRACEBACK_LIMIT_CHARS:]
    return text


def execute_run(payload: Dict[str, object]) -> Dict[str, object]:
    """Execute one sweep cell; never raises (failures become outcome entries)."""
    start = time.perf_counter()
    try:
        run = RunSpec.from_dict(payload)
        spec = run.build_scenario_spec()
        result = ScenarioRunner(
            spec,
            seed=run.seed,
            duration=run.duration,
            record_interval=run.record_interval,
        ).run()
        return {
            "run": payload,
            "status": "ok",
            "result": result.to_dict(),
            "error": None,
            "traceback": None,
            "wall_seconds": time.perf_counter() - start,
        }
    except Exception as exc:  # noqa: BLE001 - isolation is the whole point
        return {
            "run": payload,
            "status": "failed",
            "result": None,
            "error": f"{type(exc).__name__}: {exc}",
            # Debugging context only: the report layer deliberately drops it,
            # so canonical serializations stay stable across Python versions
            # and worker filesystem layouts.
            "traceback": _truncated_traceback(),
            "wall_seconds": time.perf_counter() - start,
        }


class SerialExecutor:
    """Run every cell in-process, one after another.

    ``fn`` defaults to the sweep cell runner but any picklable module-level
    function over plain payloads works -- the parallel ACO colonies reuse the
    executor pair with their own worker function.
    """

    jobs = 1

    def __init__(self, fn=execute_run) -> None:
        self.fn = fn

    def map(self, payloads: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
        """Outcomes for ``payloads``, in order."""
        return [self.fn(payload) for payload in payloads]


class MultiprocessExecutor:
    """Run cells across a ``multiprocessing`` pool of worker processes.

    ``multiprocessing.Pool.map`` preserves input order, so the outcome list is
    identical to the serial executor's regardless of completion order.  As with
    :class:`SerialExecutor`, ``fn`` may be any picklable module-level function
    (the default runs sweep cells).

    ``chunksize`` batches that many payloads per pool task: for sub-second
    cells the per-cell IPC round-trip dominates, and chunking amortizes it.
    The default stays 1 (finest-grained balancing); any value produces the
    same outcome list (the tests assert byte-identical reports).
    """

    def __init__(
        self,
        jobs: int,
        start_method: Optional[str] = None,
        fn=execute_run,
        chunksize: int = 1,
    ) -> None:
        if jobs < 2:
            raise ValueError("MultiprocessExecutor needs jobs >= 2 (use SerialExecutor)")
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.jobs = int(jobs)
        self.fn = fn
        self.chunksize = int(chunksize)
        # Prefer fork on Linux only: workers inherit the imported registries
        # instead of re-importing the package per process.  On macOS fork is
        # available but unsafe (the spawn default exists for a reason), so
        # everywhere else the platform default start method is kept.
        if start_method is None and sys.platform == "linux":
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else None
        self.start_method = start_method

    def map(self, payloads: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
        """Outcomes for ``payloads``, in order, computed by worker processes."""
        payloads = list(payloads)
        if not payloads:
            return []
        context = multiprocessing.get_context(self.start_method)
        workers = min(self.jobs, len(payloads))
        with context.Pool(processes=workers) as pool:
            return pool.map(self.fn, payloads, chunksize=self.chunksize)


def make_executor(jobs: int = 1, fn=execute_run):
    """The executor for ``jobs`` parallel workers (serial when ``jobs == 1``)."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return SerialExecutor(fn) if jobs == 1 else MultiprocessExecutor(jobs, fn=fn)
