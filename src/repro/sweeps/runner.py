"""The sweep runner client: pull work, execute locally, phone the results home.

``python -m repro.sweeps.runner --connect HOST:PORT`` (or ``repro-sim sweep
work --connect HOST:PORT``) joins a coordinator started with ``repro-sim
sweep serve`` and loops pull -> execute -> post until the coordinator says
``shutdown`` or disappears.  The runner only ever *initiates* connections, so
a fleet can sit behind NAT or a firewall with no inbound access at all.

While a cell executes, a daemon heartbeat thread extends the runner's lease
so a long run is not mistaken for a dead runner; if the process dies anyway,
the coordinator reclaims the lease (on disconnect, or at the lease deadline
for a wedged-but-connected runner) and retries the cell elsewhere.

Fault injection (tests and chaos drills only) via the
``REPRO_SWEEP_RUNNER_FAULT`` environment variable:

* ``die-after-pulls:N`` -- hard-exit (``os._exit``) while holding the N-th
  lease, before posting anything: a crashed runner.
* ``wedge-after-pulls:N`` -- stop heartbeating and sleep forever while
  holding the N-th lease: a hung runner whose connection stays open.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
from typing import Callable, Optional, Tuple

from repro.sweeps.executor import execute_run
from repro.sweeps.wire import FrameError, read_frame_sync, send_frame_sync

#: Environment variable carrying the fault-injection mode.
FAULT_ENV = "REPRO_SWEEP_RUNNER_FAULT"

#: Exit code of a ``die-after-pulls`` hard exit (distinct from normal failures).
DIE_EXIT_CODE = 17


def _parse_fault(value: Optional[str]) -> Tuple[Optional[str], int]:
    """``("die"|"wedge"|None, pull_count)`` from a ``mode-after-pulls:N`` string."""
    if not value:
        return None, 0
    mode, _, count = value.partition(":")
    if mode not in ("die-after-pulls", "wedge-after-pulls"):
        raise ValueError(
            f"unknown {FAULT_ENV} mode {value!r}; expected "
            "'die-after-pulls:N' or 'wedge-after-pulls:N'"
        )
    return mode.split("-", 1)[0], int(count or 1)


class CoordinatorGone(ConnectionError):
    """The coordinator closed the connection (normal at end of a sweep)."""


class SweepRunner:
    """One work-pulling runner bound to a coordinator address.

    ``fn`` is the cell executor (:func:`~repro.sweeps.executor.execute_run`
    by default; tests substitute slow or failing callables).  :meth:`run`
    blocks until shutdown and returns the number of outcomes posted.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        runner_id: Optional[str] = None,
        fn: Callable[[dict], dict] = execute_run,
        connect_timeout: float = 10.0,
        fault: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.runner_id = runner_id or f"runner-{os.getpid()}"
        self.fn = fn
        self.connect_timeout = float(connect_timeout)
        self._fault_mode, self._fault_pulls = _parse_fault(
            fault if fault is not None else os.environ.get(FAULT_ENV)
        )
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        #: Lease currently being executed (heartbeat thread reads these).
        self._current_lease: Optional[str] = None
        self._heartbeat_seconds = 1.0
        self.posted = 0

    # ------------------------------------------------------------------ plumbing
    def _exchange(self, message: dict) -> dict:
        """One request/response pair; the lock keeps pairs atomic across threads."""
        with self._lock:
            if self._sock is None:
                raise CoordinatorGone("not connected")
            send_frame_sync(self._sock, message)
            reply = read_frame_sync(self._sock)
        if reply is None:
            raise CoordinatorGone("coordinator closed the connection")
        return reply

    def _heartbeat_forever(self) -> None:
        """Extend the current lease periodically while a cell executes."""
        last_sent = time.monotonic()
        while not self._stop.is_set():
            time.sleep(min(0.05, self._heartbeat_seconds / 2.0))
            lease = self._current_lease
            if lease is None:
                last_sent = time.monotonic()
                continue
            if time.monotonic() - last_sent < self._heartbeat_seconds:
                continue
            try:
                self._exchange({"type": "heartbeat", "lease_id": lease})
            except (OSError, FrameError, CoordinatorGone):
                return  # the main loop will discover the dead connection
            last_sent = time.monotonic()

    def _inject_fault(self, pulls: int) -> None:
        if self._fault_mode is None or pulls != self._fault_pulls:
            return
        if self._fault_mode == "die":
            # A crash, not an exit path: no socket shutdown, no cleanup.
            os._exit(DIE_EXIT_CODE)
        # Wedge: keep the connection open but stop heartbeating and never post.
        self._current_lease = None
        while True:  # pragma: no cover - terminated by the executor's cleanup
            time.sleep(3600.0)

    # ----------------------------------------------------------------- main loop
    def run(self) -> int:
        """Pull/execute/post until the coordinator shuts the sweep down."""
        self._sock = socket.create_connection((self.host, self.port), self.connect_timeout)
        heartbeat = threading.Thread(target=self._heartbeat_forever, daemon=True)
        pulls = 0
        try:
            self._exchange({"type": "hello", "runner": self.runner_id, "pid": os.getpid()})
            heartbeat.start()
            while True:
                try:
                    reply = self._exchange({"type": "pull", "runner": self.runner_id})
                except (OSError, FrameError, CoordinatorGone):
                    break  # coordinator gone: the sweep is over (or aborted)
                kind = reply.get("type")
                if kind == "shutdown":
                    break
                if kind == "idle":
                    time.sleep(float(reply.get("retry_seconds", 0.05)))
                    continue
                if kind != "lease":
                    break  # protocol error; bail out rather than spin
                pulls += 1
                self._heartbeat_seconds = float(
                    reply.get("heartbeat_seconds", self._heartbeat_seconds)
                )
                self._inject_fault(pulls)
                lease_id = reply["lease_id"]
                self._current_lease = lease_id
                try:
                    outcome = self.fn(reply["run"])
                finally:
                    self._current_lease = None
                try:
                    self._exchange(
                        {
                            "type": "outcome",
                            "lease_id": lease_id,
                            "run_id": reply.get("run_id"),
                            "outcome": outcome,
                        }
                    )
                    self.posted += 1
                except (OSError, FrameError, CoordinatorGone):
                    break
        finally:
            self._stop.set()
            with self._lock:
                if self._sock is not None:
                    self._sock.close()
                    self._sock = None
        return self.posted


def parse_address(value: str) -> Tuple[str, int]:
    """``HOST:PORT`` -> ``(host, port)`` with a helpful error."""
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def main(argv: Optional[list] = None) -> int:
    """Entry point of ``python -m repro.sweeps.runner``."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep-runner", description="work-pulling sweep runner client"
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT", help="coordinator address"
    )
    parser.add_argument("--id", default=None, help="runner id (defaults to runner-<pid>)")
    args = parser.parse_args(argv)
    try:
        host, port = parse_address(args.connect)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        runner = SweepRunner(host, port, runner_id=args.id)
        posted = runner.run()
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"runner {runner.runner_id}: posted {posted} outcome(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess spawns
    sys.exit(main())
