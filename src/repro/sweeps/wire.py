"""Length-prefixed JSON framing for the distributed sweep protocol.

One frame is a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON.  The same framing is used in both directions and by both
transports: the coordinator reads frames through ``asyncio`` streams, the
runner client through blocking sockets.  Keeping the codec in one tiny module
means a protocol change cannot desynchronize the two sides.

A *clean* close (EOF exactly on a frame boundary) reads as ``None``; EOF in
the middle of a frame raises :class:`FrameError` -- the coordinator treats it
as a dropped connection and reclaims the peer's leases immediately instead of
waiting for their deadlines.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

#: Frame header: unsigned 32-bit big-endian payload length.
HEADER = struct.Struct(">I")

#: Upper bound on one frame (a full ``ScenarioResult`` is ~100 KiB; 64 MiB is
#: far above any legitimate payload and cheap insurance against a corrupt or
#: hostile length header allocating unbounded memory).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(ConnectionError):
    """A frame could not be read or decoded (truncated, oversized, not JSON)."""


def encode_frame(message: dict) -> bytes:
    """``message`` as one wire frame (header + compact JSON body)."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Decode a frame body; raises :class:`FrameError` on malformed JSON."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise FrameError(f"frame must decode to an object, got {type(message).__name__}")
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame header announces {length} bytes (> MAX_FRAME_BYTES)")


# ------------------------------------------------------------------- blocking
def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on immediate EOF, raises mid-read."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise FrameError(f"connection closed {remaining} bytes into a read")
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sync(sock: socket.socket) -> Optional[dict]:
    """Read one frame from a blocking socket (``None`` on clean EOF)."""
    header = _recv_exactly(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    _check_length(length)
    body = _recv_exactly(sock, length)
    if body is None:
        raise FrameError("connection closed between frame header and body")
    return decode_body(body)


def send_frame_sync(sock: socket.socket, message: dict) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(message))


# -------------------------------------------------------------------- asyncio
async def read_frame(reader) -> Optional[dict]:
    """Read one frame from an :class:`asyncio.StreamReader` (``None`` on EOF)."""
    import asyncio

    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed inside a frame header") from None
    (length,) = HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise FrameError("connection closed inside a frame body") from None
    return decode_body(body)


async def write_frame(writer, message: dict) -> None:
    """Write one frame to an :class:`asyncio.StreamWriter` and drain."""
    writer.write(encode_frame(message))
    await writer.drain()
