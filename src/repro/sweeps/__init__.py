"""Sweep engine: declarative experiment grids over the scenario catalog.

The paper's evaluation is a grid -- algorithms x cluster sizes x workloads --
and this package turns "a grid" into data the way :mod:`repro.scenarios`
turned "an experiment" into data:

* :class:`~repro.sweeps.spec.SweepSpec` declares the axes (scenario names,
  policy-override cells, threshold grids, seeds or spawn-derived replicates)
  and expands them into :class:`~repro.sweeps.spec.RunSpec` cells;
* :mod:`repro.sweeps.executor` runs the cells serially or across a
  ``multiprocessing`` pool, with per-run failure isolation and seeds derived
  once via ``numpy.random.SeedSequence.spawn``;
* :mod:`repro.sweeps.distributed` scales past one machine: an asyncio socket
  coordinator serves cells to work-pulling runner clients
  (:mod:`repro.sweeps.runner`) over a length-prefixed JSON protocol, with
  per-lease deadlines, runner heartbeats, straggler-aware dispatch and
  speculative re-dispatch -- and the same byte-identical-report guarantee;
* :class:`~repro.sweeps.report.SweepReport` aggregates per-run
  :class:`~repro.scenarios.runner.ScenarioResult` data into per-cell metrics
  (energy, migrations, SLA violations, packing) with JSON and CSV output whose
  bytes are independent of the backend, plus Pareto-front analysis
  (:func:`~repro.sweeps.report.analyze_report`) so sweeps end in answers;
* :mod:`repro.sweeps.catalog` names ready-made grids (``smoke-2x2``,
  ``paper-e5-grid``, ``policy-matrix``).

Use ``repro-sim sweep list|describe|run --jobs N|--runners N``,
``sweep serve`` / ``sweep work --connect`` / ``sweep analyze`` from the CLI,
or::

    from repro.sweeps import get_sweep, run_sweep
    report = run_sweep(get_sweep("smoke-2x2"), runners=4)
    print(report.pareto())
"""

from repro.sweeps.spec import RunSpec, SweepSpec, policy_cell_label, thresholds_label
from repro.sweeps.executor import (
    MultiprocessExecutor,
    SerialExecutor,
    execute_run,
    make_executor,
)
from repro.sweeps.report import (
    PARETO_OBJECTIVES,
    SweepReport,
    analyze_report,
    pareto_csv,
    pareto_json,
    pareto_ranks,
)
from repro.sweeps.engine import run_sweep
from repro.sweeps.distributed import (
    CoordinatorThread,
    DistributedExecutor,
    SweepAborted,
    SweepCoordinator,
    collect_outcomes,
    spawn_loopback_runner,
)
from repro.sweeps.runner import SweepRunner
from repro.sweeps.catalog import get_sweep, iter_sweeps, register_sweep, sweep_names

__all__ = [
    "SweepSpec",
    "RunSpec",
    "policy_cell_label",
    "thresholds_label",
    "SerialExecutor",
    "MultiprocessExecutor",
    "execute_run",
    "make_executor",
    "SweepReport",
    "PARETO_OBJECTIVES",
    "analyze_report",
    "pareto_ranks",
    "pareto_json",
    "pareto_csv",
    "run_sweep",
    "SweepCoordinator",
    "CoordinatorThread",
    "DistributedExecutor",
    "SweepAborted",
    "SweepRunner",
    "collect_outcomes",
    "spawn_loopback_runner",
    "register_sweep",
    "sweep_names",
    "get_sweep",
    "iter_sweeps",
]
