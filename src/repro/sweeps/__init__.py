"""Sweep engine: declarative experiment grids over the scenario catalog.

The paper's evaluation is a grid -- algorithms x cluster sizes x workloads --
and this package turns "a grid" into data the way :mod:`repro.scenarios`
turned "an experiment" into data:

* :class:`~repro.sweeps.spec.SweepSpec` declares the axes (scenario names,
  policy-override cells, threshold grids, seeds or spawn-derived replicates)
  and expands them into :class:`~repro.sweeps.spec.RunSpec` cells;
* :mod:`repro.sweeps.executor` runs the cells serially or across a
  ``multiprocessing`` pool, with per-run failure isolation and seeds derived
  once via ``numpy.random.SeedSequence.spawn``;
* :class:`~repro.sweeps.report.SweepReport` aggregates per-run
  :class:`~repro.scenarios.runner.ScenarioResult` data into per-cell metrics
  (energy, migrations, SLA violations, packing) with JSON and CSV output whose
  bytes are independent of the job count;
* :mod:`repro.sweeps.catalog` names ready-made grids (``smoke-2x2``,
  ``paper-e5-grid``, ``policy-matrix``).

Use ``repro-sim sweep list|describe|run --jobs N`` from the CLI, or::

    from repro.sweeps import get_sweep, run_sweep
    report = run_sweep(get_sweep("smoke-2x2"), jobs=4)
    print(report.to_json())
"""

from repro.sweeps.spec import RunSpec, SweepSpec, policy_cell_label, thresholds_label
from repro.sweeps.executor import (
    MultiprocessExecutor,
    SerialExecutor,
    execute_run,
    make_executor,
)
from repro.sweeps.report import SweepReport
from repro.sweeps.engine import run_sweep
from repro.sweeps.catalog import get_sweep, iter_sweeps, register_sweep, sweep_names

__all__ = [
    "SweepSpec",
    "RunSpec",
    "policy_cell_label",
    "thresholds_label",
    "SerialExecutor",
    "MultiprocessExecutor",
    "execute_run",
    "make_executor",
    "SweepReport",
    "run_sweep",
    "register_sweep",
    "sweep_names",
    "get_sweep",
    "iter_sweeps",
]
