"""Two-level VM scheduling policies (back-compat facade).

Paper Section II.C: "Scheduling decisions are taken at two-levels: GL and GM."

The policy implementations now live in :mod:`repro.policies` -- the unified
policy subsystem with a central registry (``@register_policy`` /
``make_policy``), a shared numpy :class:`~repro.policies.view.ClusterView`
snapshot and a common decision vocabulary.  This package re-exports the
historical names so existing imports keep working:

* **Group Leader dispatching** (:mod:`repro.scheduling.dispatching`): pick an
  ordered candidate list of Group Managers from their summaries (round-robin,
  least-loaded, first-fit); the GL then linearly probes the candidates with
  placement requests.
* **Group Manager placement** (:mod:`repro.scheduling.placement`): place an
  incoming VM on one of the GM's Local Controllers (first-fit, best-fit,
  worst-fit, round-robin).
* **Relocation** (:mod:`repro.scheduling.relocation`): react to overload /
  underload events from LCs by moving VMs away from hot / lightly loaded
  hosts.
* **Reconfiguration** (:mod:`repro.scheduling.reconfiguration`): periodically
  re-pack moderately loaded hosts with a consolidation algorithm from
  :mod:`repro.core` and emit the resulting migration plan.
* **Thresholds** (:mod:`repro.scheduling.thresholds`): the utilization bands
  defining overload / underload / moderate load.
"""

from repro.scheduling.thresholds import UtilizationThresholds, LoadBand
from repro.scheduling.dispatching import (
    DispatchingPolicy,
    FirstFitDispatching,
    LeastLoadedDispatching,
    RoundRobinDispatching,
    make_dispatching_policy,
)
from repro.scheduling.placement import (
    BestFitPlacement,
    FirstFitPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    WorstFitPlacement,
    make_placement_policy,
)
from repro.scheduling.relocation import (
    OverloadRelocationPolicy,
    RelocationDecision,
    UnderloadRelocationPolicy,
)
from repro.scheduling.reconfiguration import ReconfigurationPlan, ReconfigurationPolicy

__all__ = [
    "UtilizationThresholds",
    "LoadBand",
    "DispatchingPolicy",
    "RoundRobinDispatching",
    "LeastLoadedDispatching",
    "FirstFitDispatching",
    "make_dispatching_policy",
    "PlacementPolicy",
    "FirstFitPlacement",
    "BestFitPlacement",
    "WorstFitPlacement",
    "RoundRobinPlacement",
    "make_placement_policy",
    "RelocationDecision",
    "OverloadRelocationPolicy",
    "UnderloadRelocationPolicy",
    "ReconfigurationPolicy",
    "ReconfigurationPlan",
]
