"""Back-compat shim: reconfiguration now lives in :mod:`repro.policies.reconfiguration`.

The :class:`ReconfigurationPolicy` driver moved into the unified policy
subsystem, where every :mod:`repro.core` consolidation algorithm (ACO,
distributed ACO, FFD, BFD, WFD) is registered as a ``reconfiguration`` policy.
``ReconfigurationPlan`` is an alias of the unified
:class:`~repro.policies.decisions.MigrationPlan`.
"""

from __future__ import annotations

from repro.policies.decisions import MigrationPlan as ReconfigurationPlan
from repro.policies.reconfiguration import ReconfigurationPolicy

__all__ = [
    "ReconfigurationPolicy",
    "ReconfigurationPlan",
]
