"""Periodic reconfiguration: consolidation of moderately loaded hosts.

Paper Section II.C: "reconfiguration policies can be specified which will be
called periodically according to the system administrator specified interval
to further optimize the VM placement of moderately loaded nodes. For example,
a VM consolidation policy can be enabled to weekly optimize the VM placement
by packing VMs on as few nodes as possible."

The :class:`ReconfigurationPolicy` glues three pieces together:

1. select the hosts that may participate (powered-on, not overloaded -- the
   paper restricts reconfiguration to moderately loaded nodes so that hot
   hosts are handled by overload relocation instead);
2. run a consolidation algorithm from :mod:`repro.core` (ACO by default, FFD
   as the baseline) over the participating hosts' VMs;
3. translate the new placement into an ordered migration plan
   (:func:`repro.core.migration_plan.plan_migrations`) and report which hosts
   the plan frees entirely (candidates for suspension).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cluster.node import PhysicalNode
from repro.cluster.vm import VirtualMachine
from repro.core.base import ConsolidationAlgorithm
from repro.core.aco import ACOConsolidation
from repro.core.migration_plan import MigrationPlan, plan_migrations
from repro.core.placement import Placement, placement_from_nodes
from repro.scheduling.thresholds import UtilizationThresholds


@dataclass
class ReconfigurationPlan:
    """Everything a Group Manager needs to execute one reconfiguration round."""

    #: (vm, source node, destination node) triples in execution order.
    moves: List[tuple] = field(default_factory=list)
    #: Nodes the plan leaves without any VMs (suspension candidates).
    released_nodes: List[PhysicalNode] = field(default_factory=list)
    #: Hosts used before / after, for reporting.
    hosts_before: int = 0
    hosts_after: int = 0
    #: The consolidation algorithm's own result (runtime, iterations, ...).
    consolidation_summary: dict = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        """True if the round proposes no migrations."""
        return not self.moves

    @property
    def hosts_saved(self) -> int:
        """Net reduction in active hosts if the plan executes fully."""
        return max(0, self.hosts_before - self.hosts_after)


class ReconfigurationPolicy:
    """Periodic consolidation driver used by Group Managers."""

    name = "consolidation"

    def __init__(
        self,
        algorithm: Optional[ConsolidationAlgorithm] = None,
        thresholds: Optional[UtilizationThresholds] = None,
        max_migrations: Optional[int] = None,
        include_overloaded: bool = False,
    ) -> None:
        self.algorithm = algorithm or ACOConsolidation()
        self.thresholds = thresholds or UtilizationThresholds()
        self.max_migrations = max_migrations
        self.include_overloaded = include_overloaded

    # ------------------------------------------------------------------ run
    def plan(self, nodes: Sequence[PhysicalNode]) -> ReconfigurationPlan:
        """Compute a reconfiguration plan over the given Local Controller hosts."""
        eligible = self._eligible_nodes(nodes)
        plan = ReconfigurationPlan()
        vms: List[VirtualMachine] = [vm for node in eligible for vm in node.vms]
        if len(eligible) < 2 or not vms:
            return plan

        current, vm_list, node_list = placement_from_nodes(eligible, vms)
        plan.hosts_before = current.hosts_used()

        result = self.algorithm.consolidate(current)
        target = result.placement
        plan.consolidation_summary = result.summary()

        if not (target.fully_assigned and target.is_feasible()):
            # A consolidation result that cannot be executed is discarded; the
            # current placement remains in force (fail-safe behaviour).
            plan.hosts_after = plan.hosts_before
            return plan

        plan.hosts_after = target.hosts_used()
        migration_plan: MigrationPlan = plan_migrations(
            current, target, max_migrations=self.max_migrations
        )
        for migration in migration_plan:
            plan.moves.append(
                (
                    vm_list[migration.vm_index],
                    node_list[migration.source_host],
                    node_list[migration.target_host],
                )
            )

        # Nodes emptied by the executed moves (not merely by the ideal target,
        # which may be partially deferred).
        simulated_population = {node.node_id: node.vm_count for node in eligible}
        for vm, source, destination in plan.moves:
            simulated_population[source.node_id] -= 1
            simulated_population[destination.node_id] += 1
        plan.released_nodes = [
            node for node in eligible if simulated_population[node.node_id] == 0 and node.vm_count > 0
        ]
        return plan

    # -------------------------------------------------------------- selection
    def _eligible_nodes(self, nodes: Sequence[PhysicalNode]) -> List[PhysicalNode]:
        """Powered-on hosts allowed to participate in this round."""
        eligible = []
        for node in nodes:
            if not node.is_available_for_placement:
                continue
            utilization = node.utilization()
            if not self.include_overloaded and self.thresholds.is_overloaded(utilization):
                continue
            eligible.append(node)
        return eligible
