"""Back-compat shim: relocation policies now live in :mod:`repro.policies.relocation`.

The implementations moved into the unified policy subsystem (registered under
the ``overload-relocation`` / ``underload-relocation`` kinds, vectorized over
a :class:`~repro.policies.view.ClusterView`).  ``RelocationDecision`` is an
alias of the unified :class:`~repro.policies.decisions.MigrationPlan`.
"""

from __future__ import annotations

from repro.policies.relocation import (
    OverloadRelocationPolicy,
    RelocationDecision,
    UnderloadRelocationPolicy,
)

__all__ = [
    "RelocationDecision",
    "OverloadRelocationPolicy",
    "UnderloadRelocationPolicy",
]
