"""Overload and underload relocation policies.

Paper Section II.C: "relocation policies are called when overload (resp.
underload) events arrive from LCs and aims at moving VMs away from heavily
(resp. lightly loaded) nodes":

* **Overload relocation** moves just enough VMs off the hot host to bring its
  utilization back under the overload threshold, choosing destinations with
  the most headroom so the problem is not simply pushed elsewhere.
* **Underload relocation** tries to move *all* VMs off a lightly loaded host
  onto moderately loaded hosts, so the now-idle host can be suspended by the
  energy manager -- but only if every VM fits elsewhere (otherwise nothing
  moves; partially evacuating a host saves no energy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.node import PhysicalNode
from repro.cluster.vm import VirtualMachine
from repro.scheduling.thresholds import UtilizationThresholds


@dataclass
class RelocationDecision:
    """The outcome of a relocation policy: which VM goes where, and why."""

    #: (vm, source node, destination node) triples, in execution order.
    moves: List[tuple] = field(default_factory=list)
    #: Human-readable reason when no moves are proposed.
    reason: str = ""

    @property
    def empty(self) -> bool:
        """True if the policy decided not to move anything."""
        return not self.moves

    def __len__(self) -> int:
        return len(self.moves)


def _cpu_index(node: PhysicalNode) -> int:
    dims = node.capacity.dimensions
    return dims.index("cpu") if "cpu" in dims else 0


def _node_cpu_utilization(node: PhysicalNode) -> float:
    index = _cpu_index(node)
    capacity = node.capacity.values[index]
    if capacity <= 0:
        return 0.0
    return float(node.used().values[index] / capacity)


class OverloadRelocationPolicy:
    """Move the smallest sufficient set of VMs off an overloaded host."""

    name = "overload-relocation"

    def __init__(self, thresholds: Optional[UtilizationThresholds] = None) -> None:
        self.thresholds = thresholds or UtilizationThresholds()

    def decide(
        self, source: PhysicalNode, destinations: Sequence[PhysicalNode]
    ) -> RelocationDecision:
        """Pick VMs to migrate away from ``source`` and their destinations.

        Strategy (matching the "minimize migrations" spirit of the paper's
        relocation description): sort the source's VMs by decreasing CPU usage
        and keep moving the largest one that still has a feasible destination
        until the source drops below the overload threshold.  Destinations are
        chosen worst-fit (most headroom first) among nodes that stay below the
        overload threshold after receiving the VM.
        """
        decision = RelocationDecision()
        cpu = _cpu_index(source)
        source_capacity = source.capacity.values[cpu]
        if source_capacity <= 0:
            decision.reason = "source has no CPU capacity"
            return decision
        current_usage = source.used().values[cpu]
        target_usage = self.thresholds.overload * source_capacity
        if current_usage <= target_usage:
            decision.reason = "source not overloaded"
            return decision

        candidates = [
            node
            for node in destinations
            if node.node_id != source.node_id and node.is_available_for_placement
        ]
        # Track the hypothetical load added to each destination by earlier moves.
        added = {node.node_id: np.zeros(len(node.capacity)) for node in candidates}
        vms = sorted(source.vms, key=lambda vm: vm.used.values[cpu], reverse=True)

        for vm in vms:
            if current_usage <= target_usage:
                break
            feasible = []
            for node in candidates:
                reserved_after = node.reserved().values + added[node.node_id] + vm.requested.values
                if np.any(reserved_after > node.capacity.values + 1e-9):
                    continue
                usage_after = (
                    node.used().values[cpu] + added[node.node_id][cpu] + vm.used.values[cpu]
                )
                if usage_after > self.thresholds.overload * node.capacity.values[cpu]:
                    continue
                feasible.append(node)
            if not feasible:
                continue
            # Worst-fit: most CPU headroom after the hypothetical moves so far.
            destination = max(
                feasible,
                key=lambda node: node.capacity.values[cpu]
                - node.used().values[cpu]
                - added[node.node_id][cpu],
            )
            decision.moves.append((vm, source, destination))
            added[destination.node_id] += vm.requested.values
            current_usage -= vm.used.values[cpu]

        if decision.empty:
            decision.reason = "no feasible destination for any VM"
        return decision


class UnderloadRelocationPolicy:
    """Evacuate an underloaded host entirely (or not at all) to create idle time."""

    name = "underload-relocation"

    def __init__(self, thresholds: Optional[UtilizationThresholds] = None) -> None:
        self.thresholds = thresholds or UtilizationThresholds()

    def decide(
        self, source: PhysicalNode, destinations: Sequence[PhysicalNode]
    ) -> RelocationDecision:
        """Move every VM off ``source`` onto moderately loaded destinations, or nothing.

        Destinations must end up *below the overload threshold* and the policy
        deliberately prefers destinations that are already loaded ("move away
        VMs to moderately loaded LCs", Section II.C) so that consolidation
        does not create new lightly-loaded hosts.
        """
        decision = RelocationDecision()
        if source.vm_count == 0:
            decision.reason = "source already idle"
            return decision
        if _node_cpu_utilization(source) >= self.thresholds.underload:
            decision.reason = "source not underloaded"
            return decision

        cpu = _cpu_index(source)
        candidates = [
            node
            for node in destinations
            if node.node_id != source.node_id
            and node.is_available_for_placement
            and node.vm_count > 0  # prefer already-busy hosts; empty ones stay suspendable
        ]
        if not candidates:
            decision.reason = "no busy destination hosts available"
            return decision

        added = {node.node_id: np.zeros(len(node.capacity)) for node in candidates}
        tentative: List[tuple] = []
        # Place the biggest VMs first (hardest to fit).
        for vm in sorted(source.vms, key=lambda vm: vm.requested.values[cpu], reverse=True):
            feasible = []
            for node in candidates:
                reserved_after = node.reserved().values + added[node.node_id] + vm.requested.values
                if np.any(reserved_after > node.capacity.values + 1e-9):
                    continue
                usage_after = (
                    node.used().values[cpu] + added[node.node_id][cpu] + vm.used.values[cpu]
                )
                if usage_after > self.thresholds.overload * node.capacity.values[cpu]:
                    continue
                feasible.append(node)
            if not feasible:
                decision.reason = f"VM {vm.name} has no feasible destination; aborting evacuation"
                return decision  # all-or-nothing
            # Best-fit: most loaded destination that still fits (packs tightly).
            destination = max(
                feasible,
                key=lambda node: (node.used().values[cpu] + added[node.node_id][cpu])
                / node.capacity.values[cpu],
            )
            tentative.append((vm, source, destination))
            added[destination.node_id] += vm.requested.values

        decision.moves = tentative
        return decision
