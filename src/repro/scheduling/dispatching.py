"""Back-compat shim: dispatching policies now live in :mod:`repro.policies.dispatching`.

The implementations moved into the unified policy subsystem.  This module
keeps the historical import path and the :func:`make_dispatching_policy`
factory working for existing call sites.
"""

from __future__ import annotations

from repro.policies.dispatching import (
    DispatchingPolicy,
    FirstFitDispatching,
    LeastLoadedDispatching,
    RoundRobinDispatching,
)
from repro.policies.registry import make_policy

__all__ = [
    "DispatchingPolicy",
    "RoundRobinDispatching",
    "LeastLoadedDispatching",
    "FirstFitDispatching",
    "make_dispatching_policy",
]


def make_dispatching_policy(name: str, **kwargs) -> DispatchingPolicy:
    """Factory keyed by policy name; unknown names list the registered alternatives."""
    return make_policy("dispatching", name, **kwargs)
