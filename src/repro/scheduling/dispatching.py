"""Group Leader dispatching policies.

Paper Section II.C: "At the GL level, VM to GM dispatching decisions are taken
based on the GM resource summary information. ... a list of candidate GMs is
provided by the dispatching policies. Based on this list, a linear search is
performed by issuing VM placement requests to the GMs."

A dispatching policy therefore returns an *ordered candidate list* of Group
Manager ids, not a single choice; the Group Leader probes them in order until
one accepts the VM.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence

from repro.cluster.resources import ResourceVector
from repro.monitoring.summary import GroupManagerSummary


class DispatchingPolicy(abc.ABC):
    """Base class: rank Group Managers for an incoming VM request."""

    name: str = "base"

    @abc.abstractmethod
    def candidates(
        self, demand: ResourceVector, summaries: Dict[str, GroupManagerSummary]
    ) -> List[str]:
        """Return GM ids ordered by preference for hosting ``demand``.

        GMs whose summary clearly cannot host the VM are filtered out; the GL
        still falls back to probing *all* GMs if the filtered list comes back
        empty, because summaries may be stale.
        """

    def _plausible(
        self, demand: ResourceVector, summaries: Dict[str, GroupManagerSummary]
    ) -> List[str]:
        """GM ids whose summary does not rule out hosting the VM."""
        plausible = [gm_id for gm_id, summary in summaries.items() if summary.could_host(demand)]
        return plausible or list(summaries)


class RoundRobinDispatching(DispatchingPolicy):
    """Rotate through Group Managers independent of load (the paper's example policy)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def candidates(
        self, demand: ResourceVector, summaries: Dict[str, GroupManagerSummary]
    ) -> List[str]:
        plausible = sorted(self._plausible(demand, summaries))
        if not plausible:
            return []
        start = self._next % len(plausible)
        self._next += 1
        return plausible[start:] + plausible[:start]


class LeastLoadedDispatching(DispatchingPolicy):
    """Prefer the GM with the lowest reserved/total ratio (load balancing)."""

    name = "least-loaded"

    def candidates(
        self, demand: ResourceVector, summaries: Dict[str, GroupManagerSummary]
    ) -> List[str]:
        plausible = self._plausible(demand, summaries)
        return sorted(plausible, key=lambda gm_id: (summaries[gm_id].utilization(), gm_id))


class FirstFitDispatching(DispatchingPolicy):
    """Always probe GMs in a fixed (id-sorted) order -- packs GMs one after another.

    This is the energy-friendly choice: it concentrates VMs on the first GMs'
    Local Controllers so later GMs' hosts stay idle and can be suspended.
    """

    name = "first-fit"

    def candidates(
        self, demand: ResourceVector, summaries: Dict[str, GroupManagerSummary]
    ) -> List[str]:
        return sorted(self._plausible(demand, summaries))


def make_dispatching_policy(name: str, **kwargs) -> DispatchingPolicy:
    """Factory keyed by policy name (``round-robin``, ``least-loaded``, ``first-fit``)."""
    registry = {
        "round-robin": RoundRobinDispatching,
        "least-loaded": LeastLoadedDispatching,
        "first-fit": FirstFitDispatching,
    }
    try:
        cls = registry[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown dispatching policy {name!r}; choose from {sorted(registry)}") from exc
    return cls(**kwargs)
