"""Back-compat shim: thresholds now live in :mod:`repro.policies.thresholds`.

The utilization bands are consumed by every policy kind, so the
implementation moved into the unified policy subsystem; this module keeps the
historical import path working.
"""

from __future__ import annotations

from repro.policies.thresholds import LoadBand, UtilizationThresholds

__all__ = ["UtilizationThresholds", "LoadBand"]
