"""Back-compat shim: placement policies now live in :mod:`repro.policies.placement`.

The implementations moved into the unified policy subsystem (central registry,
vectorized :class:`~repro.policies.view.ClusterView` scoring).  This module
keeps the historical import path and the :func:`make_placement_policy` factory
working for existing call sites.
"""

from __future__ import annotations

from repro.policies.placement import (
    BestFitPlacement,
    FirstFitPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    WorstFitPlacement,
)
from repro.policies.registry import make_policy

__all__ = [
    "PlacementPolicy",
    "FirstFitPlacement",
    "BestFitPlacement",
    "WorstFitPlacement",
    "RoundRobinPlacement",
    "make_placement_policy",
]


def make_placement_policy(name: str, **kwargs) -> PlacementPolicy:
    """Factory keyed by policy name; unknown names list the registered alternatives."""
    return make_policy("placement", name, **kwargs)
