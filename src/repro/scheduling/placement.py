"""Group Manager placement policies.

Paper Section II.C: "At the GM level, the actual VM scheduling decisions are
taken. ... Policies of the former type (e.g. round robin or first-fit) are
triggered event-based to place incoming VMs on LCs."

A placement policy selects one Local Controller (by node object) for one VM,
given the GM's current view of its LCs.  Unlike the Group Leader, the GM has
exact per-LC information, so its decision is final (or fails, bouncing the VM
back to the GL for another GM).
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.node import PhysicalNode
from repro.cluster.vm import VirtualMachine


class PlacementPolicy(abc.ABC):
    """Base class: choose a Local Controller host for one VM."""

    name: str = "base"

    @abc.abstractmethod
    def select(self, vm: VirtualMachine, nodes: Sequence[PhysicalNode]) -> Optional[PhysicalNode]:
        """Return the chosen node or ``None`` if no powered-on node fits the VM."""

    @staticmethod
    def _feasible(vm: VirtualMachine, nodes: Sequence[PhysicalNode]) -> List[PhysicalNode]:
        """Nodes that are powered on and have room for the VM's reservation."""
        return [node for node in nodes if node.is_available_for_placement and node.fits(vm)]


class FirstFitPlacement(PlacementPolicy):
    """First LC (in id order) with room -- packs hosts, leaving later ones idle."""

    name = "first-fit"

    def select(self, vm: VirtualMachine, nodes: Sequence[PhysicalNode]) -> Optional[PhysicalNode]:
        feasible = self._feasible(vm, nodes)
        if not feasible:
            return None
        return min(feasible, key=lambda node: node.node_id)


class RoundRobinPlacement(PlacementPolicy):
    """Rotate across LCs -- spreads load, the paper's other example policy."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, vm: VirtualMachine, nodes: Sequence[PhysicalNode]) -> Optional[PhysicalNode]:
        feasible = sorted(self._feasible(vm, nodes), key=lambda node: node.node_id)
        if not feasible:
            return None
        choice = feasible[self._next % len(feasible)]
        self._next += 1
        return choice


class BestFitPlacement(PlacementPolicy):
    """LC with the least remaining capacity that still fits the VM (dense packing)."""

    name = "best-fit"

    def select(self, vm: VirtualMachine, nodes: Sequence[PhysicalNode]) -> Optional[PhysicalNode]:
        feasible = self._feasible(vm, nodes)
        if not feasible:
            return None

        def residual_after(node: PhysicalNode) -> float:
            remaining = node.available().values - vm.requested.values
            return float(np.sum(remaining / node.capacity.values))

        return min(feasible, key=lambda node: (residual_after(node), node.node_id))


class WorstFitPlacement(PlacementPolicy):
    """LC with the most remaining capacity (load balancing / overload avoidance)."""

    name = "worst-fit"

    def select(self, vm: VirtualMachine, nodes: Sequence[PhysicalNode]) -> Optional[PhysicalNode]:
        feasible = self._feasible(vm, nodes)
        if not feasible:
            return None

        def residual(node: PhysicalNode) -> float:
            return float(np.sum(node.available().values / node.capacity.values))

        return max(feasible, key=lambda node: (residual(node), node.node_id))


def make_placement_policy(name: str, **kwargs) -> PlacementPolicy:
    """Factory keyed by policy name (``first-fit``, ``best-fit``, ``worst-fit``, ``round-robin``)."""
    registry = {
        "first-fit": FirstFitPlacement,
        "best-fit": BestFitPlacement,
        "worst-fit": WorstFitPlacement,
        "round-robin": RoundRobinPlacement,
    }
    try:
        cls = registry[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown placement policy {name!r}; choose from {sorted(registry)}") from exc
    return cls(**kwargs)
