"""Physical node ("Local Controller host") model.

A :class:`PhysicalNode` tracks its capacity, the VMs placed on it, its power
state, and can answer the questions the management layer asks:

* does this VM fit? (reservation-based admission)
* what is my current utilization? (usage-based, for overload/underload
  detection and for the power model)
* am I idle? (for the energy manager's suspend decision)
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.cluster.power import LinearPowerModel, PowerModel
from repro.cluster.resources import DEFAULT_DIMENSIONS, ResourceError, ResourceVector
from repro.cluster.vm import VirtualMachine, VMState


class NodeState(enum.Enum):
    """Power / availability state of a physical node."""

    ON = "on"
    SUSPENDING = "suspending"
    SUSPENDED = "suspended"
    WAKING = "waking"
    #: Crashed (failure injection); distinct from SUSPENDED because it is
    #: involuntary and loses the hosted VMs.
    FAILED = "failed"


class PhysicalNode:
    """A host managed by one Snooze Local Controller."""

    def __init__(
        self,
        node_id: str,
        capacity: Optional[ResourceVector] = None,
        power_model: Optional[PowerModel] = None,
        power_state_name: str = "suspend",
    ) -> None:
        self.node_id = str(node_id)
        self.capacity = capacity or ResourceVector([1.0, 1.0, 1.0], DEFAULT_DIMENSIONS)
        if not self.capacity.is_nonnegative() or self.capacity.l1() == 0:
            raise ResourceError(f"node {node_id} capacity must be positive, got {self.capacity}")
        self.power_model: PowerModel = power_model or LinearPowerModel()
        #: Name of the administrator-selected low power state (paper Section III).
        self.power_state_name = power_state_name
        #: Hardware class of a heterogeneous fleet (None in homogeneous clusters).
        self.node_class: Optional[str] = None
        #: Change watchers (resident decision-plane rows): callables invoked
        #: with the node whenever its placement-relevant state moves -- VM set
        #: changes, any hosted VM's usage write, or a power-state transition.
        #: A tuple (not a list) so the empty common case costs one truthiness
        #: check per mutation and registration stays copy-on-write.
        self._watchers: tuple = ()
        self._state = NodeState.ON
        self._vms: Dict[int, VirtualMachine] = {}
        #: Cached sum of hosted VM reservations; invalidated whenever the VM
        #: set changes (reservations themselves are immutable after creation).
        self._reserved_cache: Optional[np.ndarray] = None
        #: Cached sum of hosted VM usage vectors; invalidated on VM set
        #: changes and -- via the ``VirtualMachine.used`` setter and the
        #: host-node back-reference -- whenever any hosted VM's usage moves.
        self._used_cache: Optional[np.ndarray] = None
        #: Simulated time at which the node last became idle (no VMs); used by
        #: the energy manager's idle-time threshold.
        self.idle_since: Optional[float] = 0.0
        #: Cumulative bookkeeping for reports.
        self.total_vms_hosted = 0
        self.suspend_count = 0
        self.wakeup_count = 0

    # ------------------------------------------------------------- watchers
    @property
    def state(self) -> NodeState:
        """Power / availability state (watched: transitions notify observers)."""
        return self._state

    @state.setter
    def state(self, value: NodeState) -> None:
        self._state = value
        if self._watchers:
            for watcher in self._watchers:
                watcher(self)

    def watch(self, callback) -> None:
        """Register ``callback(node)`` to run after every placement-relevant change."""
        if callback not in self._watchers:
            self._watchers = (*self._watchers, callback)

    def unwatch(self, callback) -> None:
        """Remove a watcher registered with :meth:`watch` (no-op if absent)."""
        self._watchers = tuple(cb for cb in self._watchers if cb != callback)

    def _notify_watchers(self) -> None:
        if self._watchers:
            for watcher in self._watchers:
                watcher(self)

    # ------------------------------------------------------------------ VMs
    @property
    def vms(self) -> List[VirtualMachine]:
        """VMs currently placed on this node (running or migrating)."""
        return list(self._vms.values())

    @property
    def vm_count(self) -> int:
        """Number of VMs currently placed on the node."""
        return len(self._vms)

    def hosts_vm(self, vm: VirtualMachine) -> bool:
        """True if the VM is currently placed here."""
        return vm.vm_id in self._vms

    def reserved_values(self) -> np.ndarray:
        """Reserved capacity as a raw array (cached; callers must not mutate it)."""
        if self._reserved_cache is None:
            total = np.zeros(len(self.capacity))
            for vm in self._vms.values():
                total += vm.requested.values
            self._reserved_cache = total
        return self._reserved_cache

    def reserved(self) -> ResourceVector:
        """Sum of the *requested* vectors of hosted VMs (admission-control view)."""
        return ResourceVector(self.reserved_values().copy(), self.capacity.dimensions)

    def used_values(self) -> np.ndarray:
        """Used capacity as a raw array (cached; callers must not mutate it)."""
        if self._used_cache is None:
            total = np.zeros(len(self.capacity))
            for vm in self._vms.values():
                total += vm.used.values
            self._used_cache = total
        return self._used_cache

    def used(self) -> ResourceVector:
        """Sum of the *used* vectors of hosted VMs (monitoring view)."""
        return ResourceVector(self.used_values().copy(), self.capacity.dimensions)

    def available(self) -> ResourceVector:
        """Remaining reservable capacity."""
        return (self.capacity - self.reserved()).clamp_nonnegative()

    def utilization(self) -> float:
        """Scalar CPU utilization in [0, 1] based on current usage."""
        dims = self.capacity.dimensions
        cpu_index = dims.index("cpu") if "cpu" in dims else 0
        cap = self.capacity.values[cpu_index]
        if cap <= 0:
            return 0.0
        return float(min(self.used().values[cpu_index] / cap, 1.0))

    def utilization_vector(self) -> ResourceVector:
        """Per-dimension utilization fractions (usage / capacity)."""
        return self.used() / self.capacity

    def fits(self, vm: VirtualMachine) -> bool:
        """Reservation-based admission check."""
        return (self.reserved() + vm.requested).fits_within(self.capacity)

    def place_vm(self, vm: VirtualMachine, now: float = 0.0) -> None:
        """Place a VM on this node, reserving its requested capacity.

        Raises :class:`ResourceError` if the VM does not fit or the node is
        not powered on -- the scheduler is expected to have checked both.
        """
        if self.state is not NodeState.ON:
            raise ResourceError(f"cannot place VM on node {self.node_id} in state {self.state}")
        if vm.vm_id in self._vms:
            raise ResourceError(f"VM {vm.name} already placed on node {self.node_id}")
        if not self.fits(vm):
            raise ResourceError(
                f"VM {vm.name} ({vm.requested.as_dict()}) does not fit on node "
                f"{self.node_id} (available {self.available().as_dict()})"
            )
        self._vms[vm.vm_id] = vm
        self._reserved_cache = None
        self._used_cache = None
        self._notify_watchers()
        vm._host_nodes = (*vm._host_nodes, self)
        vm.mark_started(now, self.node_id)
        self.total_vms_hosted += 1
        self.idle_since = None

    def remove_vm(self, vm: VirtualMachine, now: float = 0.0) -> None:
        """Remove a VM (it finished, failed over, or is migrating away)."""
        if vm.vm_id not in self._vms:
            raise ResourceError(f"VM {vm.name} is not on node {self.node_id}")
        del self._vms[vm.vm_id]
        self._reserved_cache = None
        self._used_cache = None
        self._notify_watchers()
        vm._host_nodes = tuple(node for node in vm._host_nodes if node is not self)
        if vm.host_id == self.node_id:
            vm.host_id = None
        if not self._vms:
            self.idle_since = now

    def evict_all(self, now: float = 0.0) -> List[VirtualMachine]:
        """Remove and return all VMs (used by failure injection)."""
        vms = list(self._vms.values())
        self._vms.clear()
        self._reserved_cache = None
        self._used_cache = None
        self._notify_watchers()
        for vm in vms:
            vm._host_nodes = tuple(node for node in vm._host_nodes if node is not self)
        self.idle_since = now
        return vms

    # ----------------------------------------------------------------- power
    @property
    def is_idle(self) -> bool:
        """True if ON with no VMs placed."""
        return self.state is NodeState.ON and not self._vms

    @property
    def is_available_for_placement(self) -> bool:
        """True if new VMs may be scheduled here right now (ON and not failed)."""
        return self.state is NodeState.ON

    def idle_duration(self, now: float) -> float:
        """Seconds the node has been idle, or 0 if busy / not ON."""
        if not self.is_idle or self.idle_since is None:
            return 0.0
        return max(0.0, now - self.idle_since)

    def current_power(self, sleep_power: Optional[float] = None) -> float:
        """Instantaneous power draw in Watts given the node's state and utilization."""
        if self.state is NodeState.FAILED:
            return 0.0
        if self.state is NodeState.SUSPENDED:
            return sleep_power if sleep_power is not None else 10.0
        if self.state in (NodeState.SUSPENDING, NodeState.WAKING):
            # Transitions draw roughly full power (disks spinning, devices resuming).
            return self.power_model.max_power()
        return self.power_model.power(self.utilization())

    def __repr__(self) -> str:
        return (
            f"<Node {self.node_id} state={self.state.value} vms={len(self._vms)} "
            f"util={self.utilization():.2f}>"
        )


def release_finished_vms(nodes: Iterable[PhysicalNode], now: float) -> List[VirtualMachine]:
    """Sweep helper removing VMs whose state is FINISHED/FAILED from their hosts."""
    released: List[VirtualMachine] = []
    for node in nodes:
        for vm in node.vms:
            if vm.state in (VMState.FINISHED, VMState.FAILED):
                node.remove_vm(vm, now)
                released.append(vm)
    return released
