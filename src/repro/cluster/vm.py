"""Virtual machine model.

A VM has a *requested* capacity (its reservation, what the client asked for in
the submission request) and a *used* demand (its current estimated resource
usage, driven by a CPU-utilization trace from :mod:`repro.workloads.traces`).
Scheduling placements reserve by request; overload/underload detection and
consolidation look at usage, exactly as in Snooze where Local Controllers
monitor VM utilization and Group Managers estimate demand (paper Section II.B).
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.cluster.resources import DEFAULT_DIMENSIONS, ResourceVector


class VMState(enum.Enum):
    """Lifecycle of a virtual machine inside the simulation."""

    #: Submitted but not yet placed on any Local Controller.
    PENDING = "pending"
    #: Placed and running on a Local Controller.
    RUNNING = "running"
    #: Currently being live-migrated between Local Controllers.
    MIGRATING = "migrating"
    #: Finished (its requested runtime elapsed) and released its resources.
    FINISHED = "finished"
    #: Lost due to a Local Controller failure (paper Section II.E).
    FAILED = "failed"


_vm_counter = itertools.count()


class VirtualMachine:
    """A virtual machine with static reservation and dynamic usage."""

    __slots__ = (
        "vm_id",
        "name",
        "requested",
        "_used",
        "_host_nodes",
        "state",
        "host_id",
        "submit_time",
        "start_time",
        "finish_time",
        "runtime",
        "memory_mb",
        "trace",
        "migrations",
        "metadata",
        "_last_fraction",
    )

    def __init__(
        self,
        requested: ResourceVector,
        name: Optional[str] = None,
        runtime: Optional[float] = None,
        memory_mb: Optional[float] = None,
        trace=None,
        vm_id: Optional[int] = None,
    ) -> None:
        self.vm_id = next(_vm_counter) if vm_id is None else int(vm_id)
        self.name = name or f"vm-{self.vm_id}"
        self.requested = requested
        #: Nodes currently accounting for this VM (set by PhysicalNode; two
        #: entries during live-migration dual occupancy).  Lets ``used``
        #: writes invalidate every hosting node's cached usage aggregate.
        self._host_nodes: tuple = ()
        #: Current estimated usage; starts at the full reservation which is the
        #: conservative assumption Snooze makes before monitoring data arrives.
        self.used = requested
        self.state = VMState.PENDING
        #: Identifier of the Local Controller currently hosting the VM (or None).
        self.host_id: Optional[str] = None
        self.submit_time: Optional[float] = None
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        #: Requested runtime in seconds; ``None`` means "runs until the end of the experiment".
        self.runtime = runtime
        #: Memory footprint in MB, used by the live-migration cost model.
        self.memory_mb = float(memory_mb) if memory_mb is not None else 1024.0 * max(
            self.requested["memory"] if "memory" in self.requested.dimensions else 0.25, 0.05
        )
        #: Optional utilization trace (callable ``trace(t) -> fraction in [0, 1]``).
        self.trace = trace
        #: Number of live migrations this VM has undergone.
        self.migrations = 0
        #: Free-form annotations (owner, application tag, ...).
        self.metadata: dict = {}
        #: Trace fraction behind the current ``used`` vector (memo: ``used``
        #: is a pure function of the fraction, so an unchanged fraction --
        #: ubiquitous with constant traces -- skips rebuilding the vector).
        self._last_fraction: Optional[float] = None

    # ------------------------------------------------------------------ state
    @property
    def used(self) -> ResourceVector:
        """Current estimated usage (driven by the utilization trace)."""
        return self._used

    @used.setter
    def used(self, value: ResourceVector) -> None:
        self._used = value
        for node in self._host_nodes:
            node._used_cache = None
            if node._watchers:
                for watcher in node._watchers:
                    watcher(node)

    @property
    def is_active(self) -> bool:
        """True while the VM occupies resources on a host."""
        return self.state in (VMState.RUNNING, VMState.MIGRATING)

    def update_usage(self, now: float) -> ResourceVector:
        """Refresh :attr:`used` from the utilization trace at simulated time ``now``.

        The trace yields a scalar utilization fraction applied to the CPU
        dimension; other dimensions stay at the reservation (memory is not
        elastic, network follows CPU at a damped factor), matching the demand
        model of the authors' GRID'11 evaluation.
        """
        if self.trace is None:
            return self.used
        fraction = float(self.trace(now))
        fraction = min(max(fraction, 0.0), 1.0)
        if fraction == self._last_fraction:
            return self.used
        self._last_fraction = fraction
        values = self.requested.values.copy()
        dims = self.requested.dimensions
        for i, dim in enumerate(dims):
            if dim == "cpu":
                values[i] = self.requested.values[i] * fraction
            elif dim == "network":
                values[i] = self.requested.values[i] * (0.5 + 0.5 * fraction)
        self.used = ResourceVector(values, dims)
        return self.used

    def mark_submitted(self, now: float) -> None:
        """Record the submission time."""
        self.submit_time = now

    def mark_started(self, now: float, host_id: str) -> None:
        """Transition to RUNNING on ``host_id``."""
        self.state = VMState.RUNNING
        self.host_id = host_id
        if self.start_time is None:
            self.start_time = now

    def mark_finished(self, now: float) -> None:
        """Transition to FINISHED and release the host association."""
        self.state = VMState.FINISHED
        self.finish_time = now
        self.host_id = None

    def mark_failed(self, now: float) -> None:
        """Transition to FAILED (host crashed under it)."""
        self.state = VMState.FAILED
        self.finish_time = now
        self.host_id = None

    def __repr__(self) -> str:
        return (
            f"<VM {self.name} state={self.state.value} host={self.host_id} "
            f"req={self.requested.as_dict()}>"
        )


def make_vm(
    cpu: float = 0.25,
    memory: float = 0.25,
    network: float = 0.1,
    **kwargs,
) -> VirtualMachine:
    """Convenience constructor used heavily by tests and examples."""
    return VirtualMachine(
        ResourceVector([cpu, memory, network], DEFAULT_DIMENSIONS), **kwargs
    )
