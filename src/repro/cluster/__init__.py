"""Data-center model: resources, virtual machines, physical nodes, power.

This package is the simulated stand-in for the Grid'5000 hardware used in the
paper's evaluation.  It models exactly the quantities the Snooze management
layer reasons about:

* multi-dimensional resource capacities and demands
  (:class:`~repro.cluster.resources.ResourceVector`, CPU / memory / network
  as in Section II.A of the paper),
* virtual machines with requested capacity and time-varying utilization
  (:class:`~repro.cluster.vm.VirtualMachine`),
* physical nodes ("Local Controller hosts") with capacity, hosted VMs and a
  power state (:class:`~repro.cluster.node.PhysicalNode`),
* power models mapping utilization to Watts
  (:mod:`repro.cluster.power`), and
* cluster topology construction helpers (:mod:`repro.cluster.topology`).
"""

from repro.cluster.resources import (
    DEFAULT_DIMENSIONS,
    ResourceError,
    ResourceVector,
    demand_matrix,
    capacity_matrix,
)
from repro.cluster.vm import VirtualMachine, VMState
from repro.cluster.node import NodeState, PhysicalNode
from repro.cluster.power import (
    ConstantPowerModel,
    CubicPowerModel,
    LinearPowerModel,
    PowerModel,
    PowerStateSpec,
    DEFAULT_POWER_STATES,
)
from repro.cluster.topology import (
    ClusterSpec,
    ClusterTopology,
    NodeClass,
    build_cluster,
    homogeneous_nodes,
)

__all__ = [
    "DEFAULT_DIMENSIONS",
    "ResourceError",
    "ResourceVector",
    "demand_matrix",
    "capacity_matrix",
    "VirtualMachine",
    "VMState",
    "NodeState",
    "PhysicalNode",
    "PowerModel",
    "LinearPowerModel",
    "CubicPowerModel",
    "ConstantPowerModel",
    "PowerStateSpec",
    "DEFAULT_POWER_STATES",
    "ClusterSpec",
    "NodeClass",
    "ClusterTopology",
    "build_cluster",
    "homogeneous_nodes",
]
