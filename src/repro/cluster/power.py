"""Power models and power-state specifications.

Snooze's energy story (paper Sections I and III) rests on two mechanisms:

1. hosts draw power as a function of their utilization while ON, and
2. idle hosts can be transitioned to a low-power state (suspend/off) and
   woken up on demand, both of which take time and energy.

This module provides the standard linear model used throughout the
consolidation literature the paper builds on (Beloglazov & Buyya), a cubic
variant for sensitivity studies, plus a :class:`PowerStateSpec` describing the
sleep-state power and the transition latencies/energies used by
:mod:`repro.energy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np


class PowerModel(Protocol):
    """Anything mapping a utilization fraction in [0, 1] to Watts."""

    def power(self, utilization: float) -> float:
        """Instantaneous power draw in Watts at the given CPU utilization."""
        ...

    def idle_power(self) -> float:
        """Power draw at zero utilization (host ON but idle)."""
        ...

    def max_power(self) -> float:
        """Power draw at full utilization."""
        ...


@dataclass(frozen=True)
class LinearPowerModel:
    """``P(u) = P_idle + (P_max - P_idle) * u`` -- the standard server model.

    Default constants (170 W idle, 250 W peak) are representative of the
    PowerEdge-class nodes of the Grid'5000 clusters used by the authors.
    """

    p_idle: float = 170.0
    p_max: float = 250.0

    def __post_init__(self) -> None:
        if self.p_idle < 0 or self.p_max < self.p_idle:
            raise ValueError("require 0 <= p_idle <= p_max")

    def power(self, utilization: float) -> float:
        u = float(np.clip(utilization, 0.0, 1.0))
        return self.p_idle + (self.p_max - self.p_idle) * u

    def idle_power(self) -> float:
        return self.p_idle

    def max_power(self) -> float:
        return self.p_max


@dataclass(frozen=True)
class CubicPowerModel:
    """``P(u) = P_idle + (P_max - P_idle) * u^3`` -- convex alternative.

    Used only in ablations; real servers are closer to linear but a convex
    model stresses the consolidation trade-off (packing raises utilization on
    the remaining hosts).
    """

    p_idle: float = 170.0
    p_max: float = 250.0

    def __post_init__(self) -> None:
        if self.p_idle < 0 or self.p_max < self.p_idle:
            raise ValueError("require 0 <= p_idle <= p_max")

    def power(self, utilization: float) -> float:
        u = float(np.clip(utilization, 0.0, 1.0))
        return self.p_idle + (self.p_max - self.p_idle) * u**3

    def idle_power(self) -> float:
        return self.p_idle

    def max_power(self) -> float:
        return self.p_max


@dataclass(frozen=True)
class ConstantPowerModel:
    """A flat draw regardless of utilization -- models non-proportional hardware."""

    watts: float = 200.0

    def __post_init__(self) -> None:
        if self.watts < 0:
            raise ValueError("power must be non-negative")

    def power(self, utilization: float) -> float:  # noqa: ARG002 - interface
        return self.watts

    def idle_power(self) -> float:
        return self.watts

    def max_power(self) -> float:
        return self.watts


@dataclass(frozen=True)
class PowerStateSpec:
    """Sleep-state characteristics of a host.

    Attributes
    ----------
    sleep_power:
        Watts drawn while suspended (suspend-to-RAM keeps DRAM refreshed).
    suspend_latency / wakeup_latency:
        Seconds to enter / leave the sleep state.  During a transition the
        host can serve no VMs; Snooze must therefore account for wake-up
        latency when placing VMs onto sleeping hosts.
    suspend_energy / wakeup_energy:
        Extra Joules consumed by each transition on top of the steady draw.
    """

    name: str = "suspend"
    sleep_power: float = 10.0
    suspend_latency: float = 10.0
    wakeup_latency: float = 30.0
    suspend_energy: float = 500.0
    wakeup_energy: float = 2000.0

    def __post_init__(self) -> None:
        if self.sleep_power < 0:
            raise ValueError("sleep_power must be non-negative")
        if self.suspend_latency < 0 or self.wakeup_latency < 0:
            raise ValueError("transition latencies must be non-negative")
        if self.suspend_energy < 0 or self.wakeup_energy < 0:
            raise ValueError("transition energies must be non-negative")

    def round_trip_energy(self) -> float:
        """Energy cost of one suspend + wake-up cycle (used for break-even analysis)."""
        return self.suspend_energy + self.wakeup_energy

    def break_even_seconds(self, power_model: PowerModel) -> float:
        """Minimum sleep duration for which suspending saves energy.

        Solves ``idle_power * t = sleep_power * t + round_trip_energy`` so the
        energy manager can refuse to suspend hosts expected to be needed again
        too soon.
        """
        saving_rate = power_model.idle_power() - self.sleep_power
        if saving_rate <= 0:
            return float("inf")
        return self.round_trip_energy() / saving_rate


#: Power states offered to the system administrator in the paper ("e.g. suspend").
DEFAULT_POWER_STATES: dict[str, PowerStateSpec] = {
    "suspend": PowerStateSpec(
        name="suspend",
        sleep_power=10.0,
        suspend_latency=10.0,
        wakeup_latency=30.0,
        suspend_energy=500.0,
        wakeup_energy=2000.0,
    ),
    "shutdown": PowerStateSpec(
        name="shutdown",
        sleep_power=2.0,
        suspend_latency=60.0,
        wakeup_latency=180.0,
        suspend_energy=3000.0,
        wakeup_energy=15000.0,
    ),
}
