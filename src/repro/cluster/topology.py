"""Cluster topology construction.

The paper's testbed was a 144-node Grid'5000 cluster.  This module builds the
simulated equivalent: a set of homogeneous (or heterogeneous) physical nodes
with a network graph connecting them (used by the migration cost model to look
up bandwidth between hosts).  The graph is a :mod:`networkx` graph so examples
and benchmarks can also reason about rack-level structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.cluster.power import LinearPowerModel, PowerModel
from repro.cluster.resources import DEFAULT_DIMENSIONS, ResourceVector
from repro.cluster.node import PhysicalNode


@dataclass
class NodeClass:
    """A homogeneous slice of a heterogeneous fleet.

    Real clusters mix hardware generations: a class names one generation with
    its own capacity vector and power envelope.  A :class:`ClusterSpec` built
    from classes concatenates them in declaration order (so node index ranges
    map to classes deterministically).
    """

    name: str
    count: int
    capacity: Sequence[float] = (1.0, 1.0, 1.0)
    p_idle: float = 170.0
    p_max: float = 250.0

    def __post_init__(self) -> None:
        # Normalize so specs round-trip through JSON (lists) with equality.
        self.capacity = tuple(float(value) for value in self.capacity)
        if self.count <= 0:
            raise ValueError("node class count must be positive")
        if any(value <= 0 for value in self.capacity):
            raise ValueError("node class capacity must be positive")
        if self.p_idle < 0 or self.p_max < self.p_idle:
            raise ValueError("require 0 <= p_idle <= p_max")


@dataclass
class ClusterSpec:
    """Declarative description of a cluster to build.

    Attributes
    ----------
    node_count:
        Number of physical nodes (Local Controller hosts).
    node_capacity:
        Capacity vector per node.  Defaults to a normalized unit host.
    node_classes:
        Optional heterogeneous fleet description.  When given, nodes are built
        class by class (capacity and power model per class) and ``node_count``
        is forced to the sum of the class counts.
    nodes_per_rack:
        Rack size; intra-rack links are faster than inter-rack links.
    intra_rack_bandwidth_mbps / inter_rack_bandwidth_mbps:
        Link bandwidths used by the live-migration model.
    p_idle / p_max:
        Linear power model constants applied to every node.
    heterogeneity:
        If > 0, per-node capacities are scaled by ``1 + U(-h, +h)`` to model a
        mildly heterogeneous cluster (requires an rng at build time).
    """

    node_count: int = 16
    node_capacity: Sequence[float] = (1.0, 1.0, 1.0)
    dimensions: Sequence[str] = DEFAULT_DIMENSIONS
    node_classes: Optional[Sequence[NodeClass]] = None
    nodes_per_rack: int = 24
    intra_rack_bandwidth_mbps: float = 1000.0
    inter_rack_bandwidth_mbps: float = 500.0
    p_idle: float = 170.0
    p_max: float = 250.0
    heterogeneity: float = 0.0
    name: str = "cluster"

    def __post_init__(self) -> None:
        if self.node_classes:
            self.node_classes = list(self.node_classes)
            for node_class in self.node_classes:
                if len(node_class.capacity) != len(self.dimensions):
                    raise ValueError(
                        f"node class {node_class.name!r} capacity dimensionality "
                        f"{len(node_class.capacity)} does not match {len(self.dimensions)}"
                    )
            self.node_count = sum(node_class.count for node_class in self.node_classes)
        if self.node_count <= 0:
            raise ValueError("node_count must be positive")
        if self.nodes_per_rack <= 0:
            raise ValueError("nodes_per_rack must be positive")
        if not (0.0 <= self.heterogeneity < 1.0):
            raise ValueError("heterogeneity must be in [0, 1)")


class ClusterTopology:
    """A built cluster: nodes plus a rack-structured network graph."""

    def __init__(self, spec: ClusterSpec, nodes: List[PhysicalNode], graph: nx.Graph) -> None:
        self.spec = spec
        self.nodes = nodes
        self.graph = graph
        self._by_id: Dict[str, PhysicalNode] = {node.node_id: node for node in nodes}

    # ----------------------------------------------------------------- access
    def node(self, node_id: str) -> PhysicalNode:
        """Look a node up by id; raises ``KeyError`` if unknown."""
        return self._by_id[node_id]

    def node_ids(self) -> List[str]:
        """All node ids in creation order."""
        return [node.node_id for node in self.nodes]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def rack_of(self, node_id: str) -> int:
        """Rack index of a node."""
        return int(self.graph.nodes[node_id]["rack"])

    def bandwidth_mbps(self, src_id: str, dst_id: str) -> float:
        """Bandwidth between two hosts, used by the live-migration cost model."""
        if src_id == dst_id:
            return float("inf")
        if self.rack_of(src_id) == self.rack_of(dst_id):
            return self.spec.intra_rack_bandwidth_mbps
        return self.spec.inter_rack_bandwidth_mbps

    # ------------------------------------------------------------- aggregates
    def total_capacity(self) -> ResourceVector:
        """Sum of all node capacities."""
        total = np.zeros(len(self.spec.dimensions))
        for node in self.nodes:
            total += node.capacity.values
        return ResourceVector(total, tuple(self.spec.dimensions))

    def powered_on_nodes(self) -> List[PhysicalNode]:
        """Nodes currently available for placement."""
        return [node for node in self.nodes if node.is_available_for_placement]

    def active_node_count(self) -> int:
        """Number of nodes hosting at least one VM."""
        return sum(1 for node in self.nodes if node.vm_count > 0)


def homogeneous_nodes(
    count: int,
    capacity: Sequence[float] = (1.0, 1.0, 1.0),
    dimensions: Sequence[str] = DEFAULT_DIMENSIONS,
    power_model: Optional[PowerModel] = None,
    prefix: str = "node",
) -> List[PhysicalNode]:
    """Build ``count`` identical nodes named ``{prefix}-000`` ... ."""
    model = power_model or LinearPowerModel()
    vector = ResourceVector(list(capacity), tuple(dimensions))
    return [
        PhysicalNode(f"{prefix}-{index:03d}", capacity=vector, power_model=model)
        for index in range(count)
    ]


def build_cluster(spec: ClusterSpec, rng: Optional[np.random.Generator] = None) -> ClusterTopology:
    """Materialize a :class:`ClusterTopology` from a :class:`ClusterSpec`."""
    if spec.heterogeneity > 0 and rng is None:
        raise ValueError("heterogeneous clusters require an rng")
    # One (capacity, power model) blueprint per node, in index order: either a
    # single class covering the whole cluster or the declared class slices.
    blueprints: List[tuple] = []
    if spec.node_classes:
        for node_class in spec.node_classes:
            model = LinearPowerModel(p_idle=node_class.p_idle, p_max=node_class.p_max)
            base = np.asarray(node_class.capacity, dtype=float)
            blueprints.extend((base, model, node_class.name) for _ in range(node_class.count))
    else:
        model = LinearPowerModel(p_idle=spec.p_idle, p_max=spec.p_max)
        base = np.asarray(spec.node_capacity, dtype=float)
        blueprints = [(base, model, None)] * spec.node_count
    nodes: List[PhysicalNode] = []
    for index, (base, power_model, class_name) in enumerate(blueprints):
        capacity = base.copy()
        if spec.heterogeneity > 0:
            capacity = capacity * (1.0 + rng.uniform(-spec.heterogeneity, spec.heterogeneity))
        node = PhysicalNode(
            f"{spec.name}-node-{index:03d}",
            capacity=ResourceVector(capacity, tuple(spec.dimensions)),
            power_model=power_model,
        )
        if class_name is not None:
            node.node_class = class_name
        nodes.append(node)

    graph = nx.Graph()
    for index, node in enumerate(nodes):
        graph.add_node(node.node_id, rack=index // spec.nodes_per_rack)
    # Star topology per rack through a rack switch node, racks joined by a core
    # switch; bandwidth lookups go through ClusterTopology.bandwidth_mbps so the
    # graph mainly records rack membership and connectivity.
    rack_count = (spec.node_count + spec.nodes_per_rack - 1) // spec.nodes_per_rack
    for rack in range(rack_count):
        switch = f"{spec.name}-rackswitch-{rack:02d}"
        graph.add_node(switch, rack=rack, switch=True)
        graph.add_edge(switch, f"{spec.name}-coreswitch", bandwidth=spec.inter_rack_bandwidth_mbps)
    graph.nodes[f"{spec.name}-coreswitch"]["rack"] = -1
    graph.nodes[f"{spec.name}-coreswitch"]["switch"] = True
    for index, node in enumerate(nodes):
        rack = index // spec.nodes_per_rack
        graph.add_edge(
            node.node_id,
            f"{spec.name}-rackswitch-{rack:02d}",
            bandwidth=spec.intra_rack_bandwidth_mbps,
        )
    return ClusterTopology(spec, nodes, graph)
