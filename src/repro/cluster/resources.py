"""Multi-dimensional resource vectors.

Snooze estimates and schedules on CPU, memory and network utilization
(Section II.B of the paper).  The consolidation algorithms treat a placement
problem as *vector bin packing*: every VM is a d-dimensional demand vector and
every host a d-dimensional capacity vector.  This module provides the small
value type used everywhere plus helpers that flatten collections of VMs/hosts
into dense numpy matrices for the vectorized algorithm kernels
(:mod:`repro.core`).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Union

import numpy as np

#: Canonical dimension names used when none are specified.  The order matters:
#: it is the order of the columns of every demand/capacity matrix.
DEFAULT_DIMENSIONS: tuple[str, ...] = ("cpu", "memory", "network")

ArrayLike = Union[Sequence[float], np.ndarray, "ResourceVector"]


class ResourceError(ValueError):
    """Raised for invalid resource arithmetic (negative capacity, shape mismatch...)."""


class ResourceVector:
    """An immutable d-dimensional vector of resource quantities.

    Units are fractions of a reference host by convention in the consolidation
    experiments (e.g. ``cpu=0.25`` means a quarter of a host's cores), and
    absolute units (cores, MB, Mbit/s) in the hierarchy simulation; the class
    itself is unit-agnostic.
    """

    __slots__ = ("_values", "_dimensions")

    def __init__(
        self,
        values: ArrayLike,
        dimensions: Sequence[str] = DEFAULT_DIMENSIONS,
    ) -> None:
        if isinstance(values, ResourceVector):
            array = values._values.copy()
            dimensions = values._dimensions
        elif isinstance(values, Mapping):
            array = np.asarray([float(values.get(dim, 0.0)) for dim in dimensions], dtype=float)
        else:
            array = np.asarray(values, dtype=float).reshape(-1)
        if array.ndim != 1:
            raise ResourceError(f"resource vector must be 1-D, got shape {array.shape}")
        if len(dimensions) != array.shape[0]:
            raise ResourceError(
                f"dimension names {tuple(dimensions)} do not match vector of length {array.shape[0]}"
            )
        if np.any(~np.isfinite(array)):
            raise ResourceError("resource vector contains non-finite values")
        array.setflags(write=False)
        self._values = array
        self._dimensions = tuple(dimensions)

    # ------------------------------------------------------------ constructors
    @classmethod
    def zeros(cls, dimensions: Sequence[str] = DEFAULT_DIMENSIONS) -> "ResourceVector":
        """All-zero vector with the given dimension names."""
        return cls(np.zeros(len(dimensions)), dimensions)

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[str, float], dimensions: Sequence[str] = DEFAULT_DIMENSIONS
    ) -> "ResourceVector":
        """Build from a ``{"cpu": ..., "memory": ...}`` mapping (missing keys -> 0)."""
        return cls(mapping, dimensions)

    # ------------------------------------------------------------------ access
    @property
    def values(self) -> np.ndarray:
        """Read-only numpy view of the underlying values."""
        return self._values

    @property
    def dimensions(self) -> tuple[str, ...]:
        """Dimension names in column order."""
        return self._dimensions

    def as_dict(self) -> dict[str, float]:
        """Mapping from dimension name to value."""
        return {dim: float(v) for dim, v in zip(self._dimensions, self._values)}

    def __getitem__(self, key: Union[int, str]) -> float:
        if isinstance(key, str):
            try:
                key = self._dimensions.index(key)
            except ValueError as exc:
                raise KeyError(key) from exc
        return float(self._values[key])

    def __len__(self) -> int:
        return self._values.shape[0]

    def __iter__(self):
        return iter(float(v) for v in self._values)

    # -------------------------------------------------------------- arithmetic
    def _coerce(self, other: ArrayLike) -> np.ndarray:
        if isinstance(other, ResourceVector):
            if other._dimensions != self._dimensions:
                raise ResourceError(
                    f"dimension mismatch: {self._dimensions} vs {other._dimensions}"
                )
            return other._values
        array = np.asarray(other, dtype=float).reshape(-1)
        if array.shape != self._values.shape:
            raise ResourceError(f"shape mismatch: {self._values.shape} vs {array.shape}")
        return array

    def __add__(self, other: ArrayLike) -> "ResourceVector":
        return ResourceVector(self._values + self._coerce(other), self._dimensions)

    def __sub__(self, other: ArrayLike) -> "ResourceVector":
        return ResourceVector(self._values - self._coerce(other), self._dimensions)

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector(self._values * float(scalar), self._dimensions)

    __rmul__ = __mul__

    def __truediv__(self, other: Union[float, ArrayLike]) -> "ResourceVector":
        if np.isscalar(other):
            return ResourceVector(self._values / float(other), self._dimensions)
        divisor = self._coerce(other)
        if np.any(divisor == 0):
            raise ResourceError("division by a zero resource component")
        return ResourceVector(self._values / divisor, self._dimensions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return self._dimensions == other._dimensions and np.array_equal(
            self._values, other._values
        )

    def __hash__(self) -> int:
        return hash((self._dimensions, self._values.tobytes()))

    # -------------------------------------------------------------- predicates
    def fits_within(self, capacity: ArrayLike, tolerance: float = 1e-9) -> bool:
        """True if every component is <= the corresponding capacity component."""
        return bool(np.all(self._values <= self._coerce(capacity) + tolerance))

    def dominates(self, other: ArrayLike, tolerance: float = 1e-9) -> bool:
        """True if every component is >= the corresponding component of ``other``."""
        return bool(np.all(self._values + tolerance >= self._coerce(other)))

    def is_nonnegative(self, tolerance: float = 1e-9) -> bool:
        """True if no component is (meaningfully) negative."""
        return bool(np.all(self._values >= -tolerance))

    # ------------------------------------------------------------------ norms
    def l1(self) -> float:
        """Sum of components (the L1 size used by one FFD variant)."""
        return float(np.sum(np.abs(self._values)))

    def l2(self) -> float:
        """Euclidean norm (used by the L2-FFD variant)."""
        return float(np.linalg.norm(self._values))

    def linf(self) -> float:
        """Largest component (the bottleneck dimension)."""
        return float(np.max(np.abs(self._values))) if len(self) else 0.0

    def max_ratio_to(self, capacity: ArrayLike) -> float:
        """Largest utilization ratio ``demand_i / capacity_i`` -- the binding dimension."""
        cap = self._coerce(capacity)
        if np.any(cap <= 0):
            raise ResourceError("capacity components must be positive for ratio computation")
        return float(np.max(self._values / cap))

    def clamp_nonnegative(self) -> "ResourceVector":
        """Return a copy with negative components snapped to zero."""
        return ResourceVector(np.maximum(self._values, 0.0), self._dimensions)

    def scaled_by(self, factors: ArrayLike) -> "ResourceVector":
        """Component-wise product, e.g. utilization fractions times capacity."""
        return ResourceVector(self._values * self._coerce(factors), self._dimensions)

    def __repr__(self) -> str:
        parts = ", ".join(f"{d}={v:.4g}" for d, v in zip(self._dimensions, self._values))
        return f"ResourceVector({parts})"


# --------------------------------------------------------------------- helpers
def demand_matrix(vms: Iterable, attribute: str = "requested") -> np.ndarray:
    """Stack VM demand vectors into an ``(n_vms, d)`` float matrix.

    ``attribute`` selects which vector to read from each VM: ``"requested"``
    (static reservation) or ``"used"`` (current estimated usage).
    """
    rows = []
    for vm in vms:
        vector = getattr(vm, attribute)
        rows.append(np.asarray(vector.values if isinstance(vector, ResourceVector) else vector))
    if not rows:
        return np.empty((0, len(DEFAULT_DIMENSIONS)))
    return np.vstack(rows).astype(float)


def capacity_matrix(nodes: Iterable) -> np.ndarray:
    """Stack node capacity vectors into an ``(n_nodes, d)`` float matrix."""
    rows = []
    for node in nodes:
        vector = getattr(node, "capacity", node)
        rows.append(np.asarray(vector.values if isinstance(vector, ResourceVector) else vector))
    if not rows:
        return np.empty((0, len(DEFAULT_DIMENSIONS)))
    return np.vstack(rows).astype(float)
