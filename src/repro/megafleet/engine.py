"""Sharded lockstep execution of megafleet specs.

The object-level simulator pays Python per event; at 100k Local Controllers
even a flat per-event cost is billions of interpreter operations.  This engine
keeps the Snooze *decision plane* semantics -- per-GM groups placing VMs
locally, a Group-Leader coordinator dispatching arrivals from group summaries
-- but represents each group as resident numpy arrays (the same shape as the
hierarchy's :class:`~repro.policies.plane.DecisionPlane`) and advances the
fleet in **lockstep epochs**:

1. At an epoch boundary the coordinator draws the epoch's VM arrivals from its
   own named stream and dispatches each to a group, least-loaded over the
   latest group summaries with a running pending-demand correction (the same
   thundering-herd fix the live Group Leader applies between summaries).
2. Every *shard* (a contiguous slice of groups) advances its groups through
   the epoch independently: departures free capacity, arrivals place
   first-fit over the group's arrays, monitoring rows refresh vectorized.
   Shards run across a multiprocessing pool via the generalized sweeps
   executors (:func:`repro.sweeps.executor.make_executor`).
3. Group summaries flow back to the coordinator -- the only inter-shard
   messages, exchanged only at epoch boundaries.

Determinism is the sweeps/colonies discipline: randomness is derived *before*
the fan-out (one ``SeedSequence`` child per **group**, plus a coordinator
stream; per-epoch generators are re-derived from ``(group child, epoch)``), a
group's advance depends only on its own state, arrivals and stream, and shard
outputs merge in group order.  Results are therefore byte-identical for any
``shards`` and ``jobs`` count -- asserted by the canonical-JSON tests.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

import numpy as np

from repro.megafleet.spec import MegafleetSpec, get_megafleet
from repro.simulation.randomness import spawn_generator, spawn_seed_sequences
from repro.sweeps.executor import make_executor

#: Feasibility tolerance, matching ``ClusterView``/``ResourceVector``.
FIT_TOLERANCE = 1e-9


# -------------------------------------------------------------- group state
def _new_group(gid: int, n_lcs: int, spec: MegafleetSpec, seed: np.random.SeedSequence) -> dict:
    """Fresh picklable state for one Group Manager's LC arrays."""
    d = len(spec.dimensions)
    capacity = np.tile(np.asarray(spec.node_capacity, dtype=float), (n_lcs, 1))
    return {
        "gid": int(gid),
        "capacities": capacity,
        "reserved": np.zeros((n_lcs, d), dtype=float),
        "used": np.zeros((n_lcs, d), dtype=float),
        "vm_req": np.empty((0, d), dtype=float),
        "vm_host": np.empty(0, dtype=np.int64),
        "vm_depart": np.empty(0, dtype=float),
        "seed_entropy": seed.entropy,
        "seed_spawn_key": tuple(int(k) for k in seed.spawn_key),
        "placements": 0,
        "rejections": 0,
        "departures": 0,
        "events": 0,
    }


def _advance_group(
    group: dict,
    arrivals_req: np.ndarray,
    arrivals_life: np.ndarray,
    epoch_index: int,
    epoch_start: float,
    epoch_end: float,
    spec_view: dict,
) -> dict:
    """Advance one group through one epoch (pure function of its inputs).

    Event order inside the epoch is fixed: departures due this epoch free
    capacity first, then arrivals place first-fit in dispatch order, then the
    monitoring rows refresh.  The per-epoch generator is re-derived from the
    group's seed child and the epoch index, so the stream consumed here is
    independent of how groups are packed into shards.
    """
    reserved = group["reserved"]
    capacities = group["capacities"]
    vm_req, vm_host, vm_depart = group["vm_req"], group["vm_host"], group["vm_depart"]

    # 1. Departures due by the end of this epoch release their reservations.
    departing = vm_depart <= epoch_end
    n_departing = int(np.count_nonzero(departing))
    if n_departing:
        np.add.at(reserved, vm_host[departing], -vm_req[departing])
        np.clip(reserved, 0.0, None, out=reserved)
        keep = ~departing
        vm_req, vm_host, vm_depart = vm_req[keep], vm_host[keep], vm_depart[keep]

    # 2. Arrivals place first-fit (lowest LC row with room), like the
    #    hierarchy's FirstFitPlacement over the group's resident view.
    placed_rows: List[int] = []
    placed_req: List[np.ndarray] = []
    placed_depart: List[float] = []
    rejections = 0
    for row in range(arrivals_req.shape[0]):
        demand = arrivals_req[row]
        fits = np.all(reserved + demand <= capacities + FIT_TOLERANCE, axis=1)
        hit = int(np.argmax(fits)) if fits.any() else -1
        if hit < 0:
            rejections += 1
            continue
        reserved[hit] += demand
        placed_rows.append(hit)
        placed_req.append(demand)
        placed_depart.append(epoch_end + float(arrivals_life[row]))
    if placed_rows:
        vm_req = np.concatenate([vm_req, np.asarray(placed_req, dtype=float)])
        vm_host = np.concatenate([vm_host, np.asarray(placed_rows, dtype=np.int64)])
        vm_depart = np.concatenate([vm_depart, np.asarray(placed_depart, dtype=float)])

    # 3. Monitoring: per-LC usage rows refresh once per monitoring tick,
    #    vectorized over the whole group (the TelemetryPlane idiom).
    ticks = max(1, int(round((epoch_end - epoch_start) / spec_view["monitoring_interval"])))
    rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=group["seed_entropy"],
            spawn_key=(*group["seed_spawn_key"], int(epoch_index)),
        )
    )
    used = reserved.copy()
    cpu = 0
    for _tick in range(ticks):
        fractions = rng.uniform(spec_view["usage_low"], spec_view["usage_high"], vm_req.shape[0])
        cpu_used = np.zeros(capacities.shape[0], dtype=float)
        if vm_req.shape[0]:
            np.add.at(cpu_used, vm_host, vm_req[:, cpu] * fractions)
        used[:, cpu] = cpu_used

    group["reserved"] = reserved
    group["used"] = used
    group["vm_req"], group["vm_host"], group["vm_depart"] = vm_req, vm_host, vm_depart
    group["placements"] += len(placed_rows)
    group["rejections"] += rejections
    group["departures"] += n_departing
    # Processed state updates this epoch: VM lifecycle operations plus one
    # monitoring row per LC per tick plus the boundary summary message.
    group["events"] += (
        n_departing + len(placed_rows) + rejections + capacities.shape[0] * ticks + 1
    )
    return group


def _group_summary(group: dict) -> dict:
    """The epoch-boundary summary a group sends the coordinator."""
    free = np.clip(group["capacities"] - group["reserved"], 0.0, None)
    return {
        "gid": group["gid"],
        "lcs": int(group["capacities"].shape[0]),
        "vms": int(group["vm_req"].shape[0]),
        "free_cpu": float(free[:, 0].sum()),
    }


def advance_shard(payload: Dict[str, object]) -> Dict[str, object]:
    """Advance every group of one shard through one epoch (executor worker).

    Module-level and dict-in/dict-out, so it runs identically under the
    serial executor and a multiprocessing pool (fork or spawn).
    """
    groups = payload["groups"]
    arrivals = payload["arrivals"]
    out_groups = []
    summaries = []
    for group in groups:
        gid = group["gid"]
        arrivals_req, arrivals_life = arrivals[gid]
        group = _advance_group(
            group,
            np.asarray(arrivals_req, dtype=float),
            np.asarray(arrivals_life, dtype=float),
            payload["epoch_index"],
            payload["epoch_start"],
            payload["epoch_end"],
            payload["spec_view"],
        )
        out_groups.append(group)
        summaries.append(_group_summary(group))
    return {"groups": out_groups, "summaries": summaries}


# ------------------------------------------------------------------- results
class MegafleetResult:
    """Deterministic run outcome plus (excluded) wall-clock measurements."""

    def __init__(
        self,
        spec: MegafleetSpec,
        seed: int,
        totals: dict,
        per_group: List[dict],
        wall_seconds: float,
    ) -> None:
        self.spec = spec
        self.seed = int(seed)
        self.totals = totals
        self.per_group = per_group
        #: Wall-clock of the run; NOT part of the canonical serialization.
        self.wall_seconds = float(wall_seconds)

    def to_dict(self) -> dict:
        """The deterministic result payload (identical for any shards/jobs)."""
        return {
            "spec": self.spec.to_dict(),
            "seed": self.seed,
            "totals": dict(self.totals),
            "per_group": [dict(entry) for entry in self.per_group],
        }

    def canonical_json(self) -> str:
        """Byte-stable serialization (the sweeps/scenario discipline)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @property
    def events(self) -> int:
        """Total processed state updates across the run."""
        return int(self.totals["events"])

    @property
    def events_per_second(self) -> float:
        """Throughput of the run (processed updates / wall)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds


# -------------------------------------------------------------- coordinator
class ShardedFleetSimulator:
    """Lockstep coordinator over sharded per-GM group states."""

    def __init__(self, spec: MegafleetSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = int(seed)

    def run(self, shards: int = 1, jobs: int = 1) -> MegafleetResult:
        """Run the fleet; byte-identical for any ``shards``/``jobs`` count."""
        spec = self.spec
        if shards < 1:
            raise ValueError("shards must be >= 1")
        shards = min(int(shards), spec.group_managers)
        # Seeds are per *group*, spawned before any fan-out, so repacking
        # groups into a different shard count cannot move any stream.
        group_seeds = spawn_seed_sequences(self.seed, spec.group_managers)
        groups = [
            _new_group(gid, n_lcs, spec, group_seeds[gid])
            for gid, n_lcs in enumerate(spec.group_sizes())
        ]
        # The coordinator's arrival stream is the next child after the groups.
        arrival_rng = spawn_generator(self.seed, spec.group_managers)
        spec_view = {
            "monitoring_interval": spec.monitoring_interval,
            "usage_low": spec.usage_low,
            "usage_high": spec.usage_high,
        }
        summaries = {
            group["gid"]: _group_summary(group) for group in groups
        }
        executor = make_executor(jobs, fn=advance_shard)
        shard_slices = np.array_split(np.arange(spec.group_managers), shards)
        d = len(spec.dimensions)
        node_capacity = np.asarray(spec.node_capacity, dtype=float)
        dispatch_rejections = 0
        started = time.perf_counter()

        for epoch_index in range(spec.n_epochs):
            epoch_start = epoch_index * spec.epoch
            epoch_end = epoch_start + spec.epoch

            # --- coordinator: draw and dispatch this epoch's arrivals.
            n_arrivals = int(arrival_rng.poisson(spec.arrivals_per_epoch))
            demands = (
                arrival_rng.uniform(spec.vm_demand_low, spec.vm_demand_high, (n_arrivals, d))
                * node_capacity
            )
            lifetimes = arrival_rng.exponential(spec.vm_lifetime_mean, n_arrivals)
            projected_free = np.asarray(
                [summaries[gid]["free_cpu"] for gid in range(spec.group_managers)],
                dtype=float,
            )
            arrivals: Dict[int, list] = {
                gid: [[], []] for gid in range(spec.group_managers)
            }
            for row in range(n_arrivals):
                cpu_demand = float(demands[row, 0])
                target = int(np.argmax(projected_free))
                if projected_free[target] < cpu_demand:
                    dispatch_rejections += 1
                    continue
                projected_free[target] -= cpu_demand
                arrivals[target][0].append(demands[row])
                arrivals[target][1].append(float(lifetimes[row]))

            # --- shards advance in lockstep across the executor.
            payloads = []
            for rows in shard_slices:
                gids = [int(gid) for gid in rows]
                payloads.append(
                    {
                        "groups": [groups[gid] for gid in gids],
                        "arrivals": {
                            gid: (
                                np.asarray(arrivals[gid][0], dtype=float).reshape(-1, d),
                                np.asarray(arrivals[gid][1], dtype=float),
                            )
                            for gid in gids
                        },
                        "epoch_index": epoch_index,
                        "epoch_start": epoch_start,
                        "epoch_end": epoch_end,
                        "spec_view": spec_view,
                    }
                )
            outcomes = executor.map(payloads)

            # --- epoch boundary: merge group states and exchange summaries.
            for outcome in outcomes:
                for group, summary in zip(outcome["groups"], outcome["summaries"]):
                    groups[group["gid"]] = group
                    summaries[summary["gid"]] = summary

        wall = time.perf_counter() - started
        totals = {
            "epochs": spec.n_epochs,
            "events": int(sum(group["events"] for group in groups)),
            "placements": int(sum(group["placements"] for group in groups)),
            "rejections": int(sum(group["rejections"] for group in groups)),
            "dispatch_rejections": int(dispatch_rejections),
            "departures": int(sum(group["departures"] for group in groups)),
            "vms_running": int(sum(group["vm_req"].shape[0] for group in groups)),
        }
        per_group = [
            {
                **_group_summary(group),
                "placements": group["placements"],
                "rejections": group["rejections"],
                "departures": group["departures"],
            }
            for group in groups
        ]
        return MegafleetResult(spec, self.seed, totals, per_group, wall)


def run_megafleet(
    name_or_spec, seed: int = 0, shards: int = 1, jobs: int = 1,
    duration: Optional[float] = None,
) -> MegafleetResult:
    """Run a catalog fleet (or an explicit spec) through the sharded engine."""
    spec = (
        name_or_spec
        if isinstance(name_or_spec, MegafleetSpec)
        else get_megafleet(str(name_or_spec))
    )
    if duration is not None:
        from dataclasses import replace

        spec = replace(spec, duration=float(duration))
    return ShardedFleetSimulator(spec, seed=seed).run(shards=shards, jobs=jobs)
