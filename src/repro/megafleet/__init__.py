"""Warehouse-scale fleets: sharded lockstep simulation of the decision plane.

ROADMAP item 2's second half: the object-level hierarchy is pinned by golden
fixtures up to a few thousand Local Controllers; this package simulates fleets
up to 100k LCs by sharding per-GM group state into resident arrays advanced in
lockstep epochs, with deterministic summary/dispatch exchange at epoch
boundaries and byte-identical results for any shard/jobs count.
"""

from repro.megafleet.engine import (
    MegafleetResult,
    ShardedFleetSimulator,
    advance_shard,
    run_megafleet,
)
from repro.megafleet.spec import (
    MegafleetSpec,
    get_megafleet,
    megafleet_names,
    register_megafleet,
)

__all__ = [
    "MegafleetSpec",
    "MegafleetResult",
    "ShardedFleetSimulator",
    "advance_shard",
    "run_megafleet",
    "register_megafleet",
    "get_megafleet",
    "megafleet_names",
]
