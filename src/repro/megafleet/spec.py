"""Megafleet specs: declarative descriptions of warehouse-scale fleets.

The scenario catalog (``repro.scenarios``) runs the full object-level Snooze
hierarchy -- every LC a component, every heartbeat an event -- which is the
right fidelity up to a few thousand Local Controllers and is pinned by golden
fixtures.  The megafleet catalog describes fleets one to two orders of
magnitude beyond that (ROADMAP item 2: 100k LCs), executed by the *sharded*
lockstep engine in :mod:`repro.megafleet.engine`: per-GM group state as
resident arrays, advanced epoch by epoch with deterministic message exchange
at epoch boundaries.

Specs are plain frozen dataclasses (JSON-round-trippable via ``to_dict``), and
the catalog registers the named fleets the CLI and benchmarks run:

* ``megafleet-1k`` -- smoke-test size, used by the unit tests.
* ``megafleet-10k`` -- the CI-sized cell of the scale gate.
* ``megafleet-100k`` -- the ROADMAP target fleet (best-effort in CI).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class MegafleetSpec:
    """One warehouse-scale fleet: sizes, workload and lockstep cadence."""

    name: str
    description: str
    #: Fleet size: Local Controllers, evenly divided over the Group Managers.
    local_controllers: int
    group_managers: int
    #: Simulated seconds and the lockstep epoch (the summary-exchange
    #: interval: inter-shard messages flow only at epoch boundaries).
    duration: float
    epoch: float
    #: Resource dimensions and the homogeneous per-LC capacity.
    dimensions: Tuple[str, ...] = ("cpu", "memory", "network")
    node_capacity: Tuple[float, ...] = (1.0, 1.0, 1.0)
    #: Mean fleet-wide VM arrivals per epoch (Poisson, coordinator stream).
    arrivals_per_epoch: float = 50.0
    #: Per-dimension uniform VM demand fractions of one node's capacity.
    vm_demand_low: float = 0.05
    vm_demand_high: float = 0.35
    #: Mean VM lifetime in simulated seconds (exponential).
    vm_lifetime_mean: float = 300.0
    #: Monitoring cadence modeled inside each epoch (per-LC row updates).
    monitoring_interval: float = 10.0
    #: Per-epoch VM CPU usage fraction band (monitoring model).
    usage_low: float = 0.35
    usage_high: float = 0.9

    def __post_init__(self) -> None:
        if self.local_controllers < self.group_managers or self.group_managers < 1:
            raise ValueError("need at least one LC per group manager")
        if self.epoch <= 0 or self.duration < self.epoch:
            raise ValueError("duration must cover at least one positive epoch")
        if len(self.node_capacity) != len(self.dimensions):
            raise ValueError("node_capacity must match dimensions")

    @property
    def n_epochs(self) -> int:
        """Number of full lockstep epochs in the run."""
        return int(self.duration // self.epoch)

    def group_sizes(self) -> List[int]:
        """LCs per group manager (even split, remainder to the first groups)."""
        base, extra = divmod(self.local_controllers, self.group_managers)
        return [base + (1 if gid < extra else 0) for gid in range(self.group_managers)]

    def to_dict(self) -> dict:
        """JSON-safe spec dictionary."""
        payload = asdict(self)
        payload["dimensions"] = list(self.dimensions)
        payload["node_capacity"] = list(self.node_capacity)
        return payload


#: The named megafleet registry, insertion-ordered.
_CATALOG: Dict[str, MegafleetSpec] = {}


def register_megafleet(spec: MegafleetSpec) -> MegafleetSpec:
    """Add a spec to the catalog (name must be unique)."""
    if spec.name in _CATALOG:
        raise ValueError(f"megafleet {spec.name!r} already registered")
    _CATALOG[spec.name] = spec
    return spec


def megafleet_names() -> List[str]:
    """Registered fleet names, in registration order."""
    return list(_CATALOG)


def get_megafleet(name: str) -> MegafleetSpec:
    """Look up a registered fleet by name."""
    try:
        return _CATALOG[name]
    except KeyError:
        known = ", ".join(megafleet_names())
        raise KeyError(f"unknown megafleet {name!r} (known: {known})") from None


register_megafleet(
    MegafleetSpec(
        name="megafleet-1k",
        description="Smoke-test fleet: 1k LCs over 16 groups, short horizon.",
        local_controllers=1_000,
        group_managers=16,
        duration=120.0,
        epoch=10.0,
        arrivals_per_epoch=40.0,
        vm_lifetime_mean=120.0,
    )
)

register_megafleet(
    MegafleetSpec(
        name="megafleet-10k",
        description="CI-sized cell of the scale gate: 10k LCs over 32 groups.",
        local_controllers=10_000,
        group_managers=32,
        duration=300.0,
        epoch=10.0,
        arrivals_per_epoch=400.0,
        vm_lifetime_mean=240.0,
    )
)

register_megafleet(
    MegafleetSpec(
        name="megafleet-100k",
        description="The ROADMAP item-2 target: 100k LCs over 256 groups.",
        local_controllers=100_000,
        group_managers=256,
        duration=600.0,
        epoch=20.0,
        arrivals_per_epoch=2_000.0,
        vm_lifetime_mean=300.0,
    )
)
