"""Common machinery shared by all hierarchy components.

Every Snooze component (Entry Point, Group Manager, Local Controller) is an
actor attached to the simulated network: it owns an endpoint, an RPC channel
and a set of timers.  :class:`Component` centralizes that plumbing plus the
failure-injection hooks used by the fault-tolerance experiments:

* :meth:`Component.fail` -- crash the component: disconnect it from the
  network and stop all of its timers (heartbeats stop, exactly the paper's
  failure model);
* :meth:`Component.recover` -- restart it: reconnect and re-run its
  :meth:`Component.on_start` logic (components re-join the hierarchy through
  the normal self-organization protocol, nothing is restored magically).
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.metrics.recorder import EventLog
from repro.network.message import Message, MessageType
from repro.network.multicast import MulticastRegistry
from repro.network.rpc import RpcChannel
from repro.network.transport import Network
from repro.obs import OBSERVABILITY_SERVICE
from repro.simulation.engine import Simulator
from repro.simulation.timers import PeriodicTimer, Timeout


#: Per-simulation registry of heartbeat *leases*: ``(watcher, sender) ->
#: DeadlineHandle``.  A watcher that arms a failure detector for a peer may
#: publish the detector's handle here; on a deterministic network the peer
#: then re-arms it directly at delivery time (send time + base latency)
#: instead of materializing a heartbeat message per interval -- the unicast
#: twin of the multicast deadline sink.  Entries are dropped when the watcher
#: forgets the peer, and a stale handle is inert (generation-checked).
HEARTBEAT_LEASE_SERVICE = "heartbeat-leases"


def heartbeat_leases(sim: Simulator) -> dict:
    """The shared lease registry (created on first use)."""
    if sim.has_service(HEARTBEAT_LEASE_SERVICE):
        return sim.get_service(HEARTBEAT_LEASE_SERVICE)
    leases: dict = {}
    sim.register_service(HEARTBEAT_LEASE_SERVICE, leases)
    return leases


class ComponentState(enum.Enum):
    """Lifecycle of a hierarchy component."""

    CREATED = "created"
    RUNNING = "running"
    FAILED = "failed"
    STOPPED = "stopped"


class Component:
    """Base class for hierarchy actors."""

    def __init__(self, name: str, sim: Simulator, network: Network, event_log: Optional[EventLog] = None) -> None:
        self.name = name
        self.sim = sim
        self.network = network
        self.event_log = event_log if event_log is not None else EventLog()
        self.state = ComponentState.CREATED
        self.endpoint = network.register(name, self._on_message)
        self.rpc = RpcChannel(network, name)
        self._timers: List[PeriodicTimer] = []
        self._timeouts: List[Timeout] = []
        #: The deployment's observability plane and tracer (None when the
        #: plane is not built / the tracing pillar is off), discovered once at
        #: construction so per-message paths pay a plain attribute read.
        self.obs = (
            sim.get_service(OBSERVABILITY_SERVICE)
            if sim.has_service(OBSERVABILITY_SERVICE)
            else None
        )
        self.tracer = self.obs.tracer if self.obs is not None else None

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Bring the component up (idempotent)."""
        if self.state is ComponentState.RUNNING:
            return
        self.state = ComponentState.RUNNING
        self.endpoint.connected = True
        self.on_start()

    def on_start(self) -> None:
        """Subclass hook: create timers, join the hierarchy."""

    def fail(self) -> None:
        """Crash the component (failure injection)."""
        if self.state is not ComponentState.RUNNING:
            return
        self.state = ComponentState.FAILED
        self.network.disconnect(self.name)
        self._stop_all_timers()
        self.rpc.cancel_all()
        self.on_fail()
        self.event_log.record(self.sim.now, "component_failed", component=self.name)

    def on_fail(self) -> None:
        """Subclass hook: extra crash semantics (e.g. an LC loses its VMs)."""

    def recover(self) -> None:
        """Restart a failed component; it re-joins through the normal protocol."""
        if self.state is not ComponentState.FAILED:
            return
        self.network.reconnect(self.name)
        self.state = ComponentState.RUNNING
        self.on_start()
        self.event_log.record(self.sim.now, "component_recovered", component=self.name)

    def stop(self) -> None:
        """Cleanly stop the component at the end of an experiment."""
        if self.state is ComponentState.STOPPED:
            return
        self.state = ComponentState.STOPPED
        self._stop_all_timers()
        self.rpc.cancel_all()
        self.network.disconnect(self.name)

    @property
    def is_running(self) -> bool:
        """True while the component is alive and connected."""
        return self.state is ComponentState.RUNNING

    # ----------------------------------------------------------------- timers
    def add_timer(self, interval: float, callback, *args, start_immediately: bool = False, jitter: float = 0.0, rng=None) -> PeriodicTimer:
        """Create a periodic timer owned by (and stopped with) this component."""
        timer = PeriodicTimer(
            self.sim,
            interval,
            callback,
            *args,
            start_immediately=start_immediately,
            jitter=jitter,
            rng=rng,
            name=f"{self.name}:{getattr(callback, '__name__', 'timer')}",
        )
        self._timers.append(timer)
        return timer

    def add_timeout(self, duration: float, callback, *args, auto_start: bool = True) -> Timeout:
        """Create a restartable timeout owned by this component."""
        timeout = Timeout(self.sim, duration, callback, *args, auto_start=auto_start)
        self._timeouts.append(timeout)
        return timeout

    def add_deadline(self, table, duration: float, callback, *args):
        """Arm a deadline in a :class:`~repro.simulation.batch.DeadlineTable`.

        The returned handle is owned by (and cancelled with) this component,
        exactly like a dedicated :class:`Timeout` would be.
        """
        handle = table.arm(duration, callback, *args)
        self._timeouts.append(handle)
        return handle

    @staticmethod
    def discard_timeout(timeout) -> None:
        """Permanently discard a failure detector.

        Deadline-table handles are *released* (their entry returns to the
        table's free pool); plain Timeouts are cancelled.  Use this -- not
        bare ``cancel()`` -- whenever the detector will never be restarted.
        """
        release = getattr(timeout, "release", None)
        if release is not None:
            release()
        else:
            timeout.cancel()

    def _stop_all_timers(self) -> None:
        for timer in self._timers:
            timer.stop()
        self._timers.clear()
        for timeout in self._timeouts:
            self.discard_timeout(timeout)
        self._timeouts.clear()

    # --------------------------------------------------------------- services
    @property
    def multicast(self) -> MulticastRegistry:
        """The shared multicast registry service."""
        return self.sim.get_service(MulticastRegistry.SERVICE_NAME)

    # --------------------------------------------------------------- messages
    def _on_message(self, message: Message) -> None:
        if self.state is not ComponentState.RUNNING:
            return
        # Inline RPC triage: heartbeats outnumber RPC traffic by orders of
        # magnitude at fleet scale, so the common case skips a call.
        msg_type = message.msg_type
        if msg_type is MessageType.RPC_REQUEST or msg_type is MessageType.RPC_REPLY:
            self.rpc.handle_message(message)
            return
        self.handle_message(message)

    def handle_message(self, message: Message) -> None:
        """Subclass hook for non-RPC protocol messages (heartbeats, events)."""

    def log_event(self, category: str, **details) -> None:
        """Record a discrete event in the shared event log."""
        self.event_log.record(self.sim.now, category, component=self.name, **details)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} {self.state.value}>"
