"""SnoozeSystem: build, run and poke a whole Snooze deployment.

This facade wires all substrates together exactly once so that examples,
tests and benchmarks share the same construction code:

* the simulation kernel, named random streams and the simulated network;
* the coordination service;
* the cluster (physical nodes) plus the shared node registry and the live
  migration executor;
* the cluster-wide energy meter;
* the hierarchy components: Group Managers, Local Controllers, Entry Points
  and a client;
* failure injection helpers (kill/recover the GL, a GM or an LC) used by the
  fault-tolerance experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.cluster.node import NodeState, PhysicalNode
from repro.cluster.topology import ClusterSpec, ClusterTopology, build_cluster
from repro.coordination.znodes import CoordinationService
from repro.energy.accounting import EnergyMeter, EnergyReport
from repro.hierarchy.client import SnoozeClient, SubmissionRecord
from repro.hierarchy.config import HierarchyConfig
from repro.hierarchy.entry_point import EntryPoint
from repro.hierarchy.group_manager import GroupManager
from repro.hierarchy.local_controller import (
    MIGRATION_SERVICE,
    NODE_REGISTRY_SERVICE,
    LocalController,
)
from repro.metrics.recorder import EventLog, TimeSeriesRecorder
from repro.migration.model import MigrationCostModel, MigrationExecutor
from repro.network.multicast import MulticastRegistry
from repro.network.transport import Network
from repro.obs import ObservabilityPlane
from repro.simulation.batch import CoalescedTicker
from repro.simulation.engine import Simulator, schedule_series
from repro.simulation.randomness import RandomRouter
from repro.workloads.generator import VMRequest


@dataclass
class SystemSpec:
    """Sizing of a deployment: how many of each component to build."""

    local_controllers: int = 16
    group_managers: int = 2
    entry_points: int = 1
    cluster: Optional[ClusterSpec] = None

    def __post_init__(self) -> None:
        if self.local_controllers <= 0:
            raise ValueError("need at least one local controller")
        if self.group_managers <= 0:
            raise ValueError("need at least one group manager")
        if self.entry_points <= 0:
            raise ValueError("need at least one entry point")


class SnoozeSystem:
    """A fully wired Snooze deployment inside one simulator."""

    def __init__(
        self,
        spec: Optional[SystemSpec] = None,
        config: Optional[HierarchyConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.spec = spec or SystemSpec()
        self.config = config or HierarchyConfig()
        if seed is not None:
            self.config.seed = seed
        self.random = RandomRouter(self.config.seed)
        self.sim = Simulator()
        self.event_log = EventLog()

        # --- observability plane (registered before the network and the
        # components so both discover it as a service at construction time;
        # None when every pillar is off, which costs nothing anywhere)
        self.obs = ObservabilityPlane.build(self.sim, self.config.observability)
        if self.obs is not None:
            if self.obs.registry is not None:
                self.obs.watch_simulator()
                self.event_log.bind_metrics(self.obs.registry)
            if self.obs.profiler is not None:
                self.sim.profiler = self.obs.profiler
                if self.config.coalesce_events:
                    CoalescedTicker.shared(self.sim).profiler = self.obs.profiler

        # --- network + multicast + coordination
        self.network = Network(self.sim, self.config.network, rng=self.random.stream("network"))
        # Delivery batching rides the same switch as the other event
        # coalescing (it only ever activates on a deterministic network).
        self.network.batch_delivery = bool(self.config.coalesce_events)
        self.multicast = MulticastRegistry(self.network)
        self.coordination = CoordinationService(
            self.sim, default_session_timeout=self.config.session_timeout
        )

        # --- cluster, node registry, migration, energy
        cluster_spec = self.spec.cluster or ClusterSpec(node_count=self.spec.local_controllers)
        if cluster_spec.node_count != self.spec.local_controllers:
            raise ValueError("cluster spec node_count must match local_controllers")
        self.topology: ClusterTopology = build_cluster(
            cluster_spec, rng=self.random.stream("cluster")
        )
        self.node_registry: Dict[str, PhysicalNode] = {
            node.node_id: node for node in self.topology
        }
        self.sim.register_service(NODE_REGISTRY_SERVICE, self.node_registry)
        self.migration_executor = MigrationExecutor(
            self.sim,
            cost_model=MigrationCostModel(),
            bandwidth_lookup=self.topology.bandwidth_mbps,
        )
        self.sim.register_service(MIGRATION_SERVICE, self.migration_executor)
        self.energy_meter = EnergyMeter(
            self.sim,
            self.topology.nodes,
            sample_interval=self.config.energy_sample_interval,
        )

        # --- hierarchy components
        self.group_managers: Dict[str, GroupManager] = {}
        for index in range(self.spec.group_managers):
            name = f"gm-{index:02d}"
            self.group_managers[name] = GroupManager(
                name,
                self.sim,
                self.network,
                self.coordination,
                config=self.config,
                event_log=self.event_log,
                consolidation_rng=self.random.stream(f"aco-{name}"),
            )
        self.local_controllers: Dict[str, LocalController] = {}
        for index, node in enumerate(self.topology):
            name = f"lc-{index:03d}"
            self.local_controllers[name] = LocalController(
                name,
                node,
                self.sim,
                self.network,
                config=self.config,
                event_log=self.event_log,
            )
        self.entry_points: Dict[str, EntryPoint] = {}
        for index in range(self.spec.entry_points):
            name = f"ep-{index:02d}"
            self.entry_points[name] = EntryPoint(
                name, self.sim, self.network, config=self.config, event_log=self.event_log
            )
        self.client = SnoozeClient(
            "client-00",
            self.sim,
            self.network,
            entry_points=sorted(self.entry_points),
            config=self.config,
            event_log=self.event_log,
        )
        self.recorder: Optional[TimeSeriesRecorder] = None
        self._started = False

    # ------------------------------------------------------------------ start
    def start(self, settle_time: Optional[float] = None) -> None:
        """Start every component and let the hierarchy self-organize.

        ``settle_time`` defaults to a few heartbeat periods -- enough for the
        election to complete and every LC to join a GM.
        """
        if self._started:
            return
        self._started = True
        for group_manager in self.group_managers.values():
            group_manager.start()
        for entry_point in self.entry_points.values():
            entry_point.start()
        for local_controller in self.local_controllers.values():
            local_controller.start()
        if settle_time is None:
            settle_time = 3 * self.config.gl_heartbeat_interval + 3 * self.config.lc_heartbeat_interval
        self.sim.run(until=self.sim.now + settle_time)

    def enable_recording(self, interval: float = 60.0) -> TimeSeriesRecorder:
        """Attach a time-series recorder with the standard cluster probes."""
        if self.recorder is None:
            self.recorder = TimeSeriesRecorder(self.sim, interval=interval)
            self.recorder.add_probe("active_hosts", lambda: float(self.active_host_count()))
            self.recorder.add_probe("powered_on_hosts", lambda: float(self.powered_on_count()))
            self.recorder.add_probe(
                "cluster_power_watts",
                lambda: float(sum(node.current_power() for node in self.topology)),
            )
            self.recorder.add_probe(
                "running_vms",
                lambda: float(sum(node.vm_count for node in self.topology)),
            )
        return self.recorder

    # ------------------------------------------------------------------- run
    def run(self, duration: float) -> float:
        """Advance the simulation by ``duration`` seconds."""
        return self.sim.run(until=self.sim.now + duration)

    def run_until(self, predicate: Callable[[], bool], timeout: float, step: float = 1.0) -> bool:
        """Advance in ``step`` increments until ``predicate()`` holds or ``timeout`` elapses."""
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            if predicate():
                return True
            self.sim.run(until=min(self.sim.now + step, deadline))
        return predicate()

    # ------------------------------------------------------------ submissions
    def submit_requests(
        self,
        requests: Sequence[VMRequest],
        on_complete: Optional[Callable[[SubmissionRecord], None]] = None,
    ) -> None:
        """Schedule client submissions at their arrival times (relative to now).

        Only the next arrival occupies the event heap at any time (see
        :func:`~repro.simulation.engine.schedule_series`); firing order is
        identical to pre-scheduling one event per request.
        """
        base = self.sim.now
        schedule_series(
            self.sim,
            [(base + request.arrival_time, request.vm) for request in requests],
            lambda vm: self.client.submit(vm, on_complete),
        )

    # --------------------------------------------------------------- topology
    def current_leader(self) -> Optional[str]:
        """Name of the currently elected Group Leader (None if none)."""
        for name, group_manager in self.group_managers.items():
            if group_manager.is_running and group_manager.is_leader:
                return name
        return None

    def leader(self) -> Optional[GroupManager]:
        """The GroupManager object currently acting as leader."""
        name = self.current_leader()
        return self.group_managers.get(name) if name else None

    def hierarchy_snapshot(self) -> dict:
        """Who leads, which GM manages which LCs -- the CLI's visualization data."""
        snapshot = {"leader": self.current_leader(), "group_managers": {}}
        for name, group_manager in self.group_managers.items():
            if not group_manager.is_running:
                snapshot["group_managers"][name] = {"state": group_manager.state.value}
                continue
            snapshot["group_managers"][name] = {
                "state": group_manager.state.value,
                "is_leader": group_manager.is_leader,
                "local_controllers": sorted(group_manager.local_controllers),
            }
        return snapshot

    def assigned_lc_count(self) -> int:
        """Number of LCs currently joined to some running GM."""
        return sum(
            len(gm.local_controllers)
            for gm in self.group_managers.values()
            if gm.is_running
        )

    def active_host_count(self) -> int:
        """Hosts currently running at least one VM."""
        return self.topology.active_node_count()

    def powered_on_count(self) -> int:
        """Hosts currently in the ON power state."""
        return sum(1 for node in self.topology if node.state is NodeState.ON)

    def running_vm_count(self) -> int:
        """Total VMs currently placed on hosts."""
        return sum(node.vm_count for node in self.topology)

    # -------------------------------------------------------- failure control
    def kill_group_leader(self) -> Optional[str]:
        """Crash the current Group Leader; returns its name (None if no leader)."""
        name = self.current_leader()
        if name is None:
            return None
        self.group_managers[name].fail()
        self.event_log.record(self.sim.now, "failure_injected", component=name, role="group_leader")
        return name

    def kill_group_manager(self, name: str) -> None:
        """Crash a specific Group Manager."""
        self.group_managers[name].fail()
        self.event_log.record(self.sim.now, "failure_injected", component=name, role="group_manager")

    def kill_local_controller(self, name: str) -> None:
        """Crash a specific Local Controller (its VMs are lost, Section II.E)."""
        self.local_controllers[name].fail()
        self.event_log.record(self.sim.now, "failure_injected", component=name, role="local_controller")

    def recover_component(self, name: str) -> None:
        """Recover a previously failed component by name."""
        for registry in (self.group_managers, self.local_controllers, self.entry_points):
            if name in registry:
                registry[name].recover()
                return
        raise KeyError(f"unknown component {name!r}")

    # -------------------------------------------------------- runtime control
    def set_thresholds(self, underload: float, overload: float) -> None:
        """Change the overload/underload thresholds of a live deployment.

        The scenario engine uses this for scripted administrator actions.
        ``HierarchyConfig.thresholds`` is shared by every Local Controller, but
        Group Managers copy the object into their relocation/reconfiguration
        policies at construction, so those references are updated too.
        """
        from repro.scheduling.thresholds import UtilizationThresholds

        thresholds = UtilizationThresholds(underload=underload, overload=overload)
        self.config.thresholds = thresholds
        for group_manager in self.group_managers.values():
            group_manager.overload_policy.thresholds = thresholds
            group_manager.underload_policy.thresholds = thresholds
            group_manager.reconfiguration_policy.thresholds = thresholds
        self.event_log.record(
            self.sim.now, "thresholds_changed", underload=underload, overload=overload
        )

    # ----------------------------------------------------------------- report
    def energy_report(self) -> EnergyReport:
        """Cluster energy consumed so far."""
        return self.energy_meter.report()

    def stats(self) -> dict:
        """One-stop summary used by examples and benchmarks."""
        return {
            "time": self.sim.now,
            "leader": self.current_leader(),
            "group_managers": sum(1 for gm in self.group_managers.values() if gm.is_running),
            "local_controllers_assigned": self.assigned_lc_count(),
            "running_vms": self.running_vm_count(),
            "active_hosts": self.active_host_count(),
            "powered_on_hosts": self.powered_on_count(),
            "submissions": len(self.client.records),
            "placed": self.client.placed_count(),
            "rejected": self.client.rejected_count(),
            "vms_departed": self.client.departed_count(),
            "vms_failed": self.client.failed_vm_count(),
            "mean_submission_latency": self.client.mean_latency(),
            "migrations_completed": self.migration_executor.stats.completed,
            "network": self.network.stats(),
        }
