"""Administrator configuration of a Snooze deployment.

Everything the paper describes as "system administrator specified" lives here:
heartbeat intervals, failure-detection timeouts, monitoring and summary
periods, the scheduling policies enabled at each level, the reconfiguration
interval and the energy-management settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.energy.power_manager import PowerManagerConfig
from repro.network.transport import NetworkConfig
from repro.obs import ObservabilityConfig
from repro.policies import get_policy_spec
from repro.policies.registry import validate_policy_selection
from repro.policies.thresholds import UtilizationThresholds

#: Policy kinds whose selection historically lived in a flat string field.
#: The structured ``policies`` block and these legacy fields are kept in sync
#: both ways: a ``policies`` entry wins and updates the string field; an
#: absent entry is seeded from the string field.
LEGACY_POLICY_FIELDS: Dict[str, str] = {
    "dispatching": "dispatching_policy",
    "placement": "placement_policy",
    "assignment": "assignment_policy",
    "reconfiguration": "reconfiguration_algorithm",
}

#: Kinds that never had a legacy string field, with their default selection.
DEFAULT_POLICIES: Dict[str, str] = {
    "overload-relocation": "greedy",
    "underload-relocation": "all-or-nothing",
}


@dataclass
class HierarchyConfig:
    """All knobs of a Snooze deployment in one place."""

    # ------------------------------------------------------------ heartbeats
    #: Interval between Group Leader heartbeats (multicast to GMs, EPs, LCs).
    gl_heartbeat_interval: float = 2.0
    #: Interval between Group Manager heartbeats (to the GL and to its LCs).
    gm_heartbeat_interval: float = 2.0
    #: Interval between Local Controller heartbeats (to the assigned GM).
    lc_heartbeat_interval: float = 2.0
    #: Missing-heartbeat timeout after which a component is declared failed.
    heartbeat_timeout: float = 8.0
    #: Coordination (ZooKeeper) session timeout for Group Managers.
    session_timeout: float = 10.0

    # ------------------------------------------------------------ monitoring
    #: LC monitoring interval (sampling VMs and reporting to the GM).
    monitoring_interval: float = 10.0
    #: GM summary interval (aggregated capacity report to the GL).
    summary_interval: float = 10.0
    #: Sliding window length (number of samples) for demand estimation.
    estimation_window: int = 12
    #: Demand estimator name: mean, max, ewma, percentile.
    estimator: str = "ewma"
    #: Telemetry backend: "arrays" runs monitoring on the shared vectorized
    #: :class:`~repro.monitoring.arrays.TelemetryPlane`; "objects" keeps the
    #: scalar per-VM reference path (bit-identical, slower -- used as the
    #: old-path baseline by the scale benchmark).
    telemetry: str = "arrays"
    #: Coalesce the per-LC hot path: monitoring/heartbeat ticks share one
    #: simulator event per interval group, failure-detection deadlines live in
    #: shared :class:`~repro.simulation.batch.DeadlineTable` arrays, and (on a
    #: deterministic network) same-instant deliveries batch into one event.
    #: Behaviour-identical either way; False reproduces the pre-optimization
    #: event structure.
    coalesce_events: bool = True

    # ------------------------------------------------------------ scheduling
    #: Group Leader dispatching policy: round-robin, least-loaded, first-fit.
    dispatching_policy: str = "first-fit"
    #: Group Manager placement policy: first-fit, best-fit, worst-fit, round-robin.
    placement_policy: str = "first-fit"
    #: Utilization thresholds for overload/underload detection.
    thresholds: UtilizationThresholds = field(default_factory=UtilizationThresholds)
    #: Enable overload/underload relocation (Section II.C event-based policies).
    relocation_enabled: bool = True
    #: Periodic reconfiguration (consolidation) interval in seconds; None disables it.
    reconfiguration_interval: Optional[float] = None
    #: Consolidation algorithm for reconfiguration: "aco", "ffd", "bfd".
    reconfiguration_algorithm: str = "aco"
    #: Cap on migrations per reconfiguration round (None = unlimited).
    max_migrations_per_round: Optional[int] = None
    #: Structured policy selection: ``{kind: {"name": ..., **params}}`` entries
    #: for the registered policy kinds (``placement``, ``dispatching``,
    #: ``assignment``, ``reconfiguration``, ``overload-relocation``,
    #: ``underload-relocation``).  Kinds omitted here resolve lazily from the
    #: legacy string fields above; entries given here win and update them.
    policies: Dict[str, Dict[str, object]] = field(default_factory=dict)

    # ---------------------------------------------------------------- energy
    #: Energy management settings (idle threshold, power state, reserve hosts).
    power_manager: PowerManagerConfig = field(default_factory=lambda: PowerManagerConfig(enabled=False))
    #: Interval of the cluster-wide energy meter sampling.
    energy_sample_interval: float = 60.0

    # --------------------------------------------------------------- network
    #: Simulated management-network characteristics.
    network: NetworkConfig = field(default_factory=NetworkConfig)

    # --------------------------------------------------------- observability
    #: Which observability pillars to enable (metrics / tracing / profiling).
    #: None of them affects simulated behaviour -- golden fixtures stay
    #: byte-identical with every pillar on.
    observability: ObservabilityConfig = field(default_factory=ObservabilityConfig)

    # ----------------------------------------------------------------- sizing
    #: Number of Entry Point replicas.
    entry_points: int = 1
    #: LC -> GM assignment policy at the GL: "round-robin" or "least-loaded".
    assignment_policy: str = "round-robin"

    # ------------------------------------------------------------------ misc
    #: RPC timeout for commands (LC start/migrate, join, assignment).
    rpc_timeout: float = 5.0
    #: End-to-end timeout for a placement probe (GL -> GM).  Must be generous
    #: enough to cover a host wake-up when energy management is enabled
    #: (Section III: hosts are woken on demand for incoming placements).
    placement_timeout: float = 90.0
    #: Base seed for all random streams of the deployment.
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "gl_heartbeat_interval",
            "gm_heartbeat_interval",
            "lc_heartbeat_interval",
            "heartbeat_timeout",
            "session_timeout",
            "monitoring_interval",
            "summary_interval",
            "energy_sample_interval",
            "rpc_timeout",
            "placement_timeout",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.heartbeat_timeout <= max(
            self.gl_heartbeat_interval, self.gm_heartbeat_interval, self.lc_heartbeat_interval
        ):
            raise ValueError("heartbeat_timeout must exceed every heartbeat interval")
        if self.estimation_window <= 0:
            raise ValueError("estimation_window must be positive")
        if self.telemetry not in ("arrays", "objects"):
            raise ValueError(
                f"telemetry must be 'arrays' or 'objects', got {self.telemetry!r}"
            )
        if self.entry_points <= 0:
            raise ValueError("entry_points must be positive")
        if self.reconfiguration_interval is not None and self.reconfiguration_interval <= 0:
            raise ValueError("reconfiguration_interval must be positive or None")
        if isinstance(self.observability, dict):
            self.observability = ObservabilityConfig(**self.observability)
        self._resolve_policies()

    # -------------------------------------------------------------- policies
    def _resolve_policies(self) -> None:
        """Validate the authored ``policies`` block and the legacy string fields.

        ``self.policies`` keeps only the entries the caller actually wrote
        (so ``dataclasses.replace`` and serialization carry authored intent,
        not derived state); selections for kinds without an entry are read
        from the legacy string fields / defaults *lazily* at build time.
        A block entry wins over its legacy field and updates the string so
        direct reads stay coherent.  Unknown kinds, names and parameter names
        raise :class:`ValueError` at construction (listing the alternatives).
        """
        policies: Dict[str, Dict[str, object]] = {}
        for kind, entry in (self.policies or {}).items():
            validate_policy_selection(str(kind), entry)  # bad shape/kind/name -> ValueError
            policies[str(kind)] = dict(entry)
        self.policies = policies
        for kind, attr in LEGACY_POLICY_FIELDS.items():
            if kind in policies:
                setattr(self, attr, str(policies[kind]["name"]))
            else:
                get_policy_spec(kind, getattr(self, attr))  # unknown name -> ValueError

    def _policy_entry(self, kind: str) -> Dict[str, object]:
        """The effective ``{"name": ..., **params}`` selection for ``kind``.

        Precedence: an authored ``policies`` entry, else the legacy string
        field, else the built-in default.  Legacy fields and the block are
        read live, so post-construction mutation of either is honored.
        """
        entry = self.policies.get(kind)
        if entry is not None:
            if kind in LEGACY_POLICY_FIELDS:
                # Keep the documented back-compat string coherent with the
                # block even when the block was mutated after construction.
                setattr(self, LEGACY_POLICY_FIELDS[kind], str(entry["name"]))
            return dict(entry)
        if kind in LEGACY_POLICY_FIELDS:
            return {"name": getattr(self, LEGACY_POLICY_FIELDS[kind])}
        if kind in DEFAULT_POLICIES:
            return {"name": DEFAULT_POLICIES[kind]}
        raise ValueError(
            f"unknown policy kind {kind!r}; choose from "
            f"{sorted(set(LEGACY_POLICY_FIELDS) | set(DEFAULT_POLICIES))}"
        )

    def resolved_policies(self) -> Dict[str, Dict[str, object]]:
        """The effective selection of every known policy kind."""
        kinds = set(LEGACY_POLICY_FIELDS) | set(DEFAULT_POLICIES) | set(self.policies)
        return {kind: self._policy_entry(kind) for kind in sorted(kinds)}

    def policy_name(self, kind: str) -> str:
        """The selected policy name for ``kind``."""
        return str(self._policy_entry(kind)["name"])

    def build_policy(self, kind: str, **extra):
        """Construct the selected policy for ``kind`` through the registry.

        ``extra`` carries runtime wiring (thresholds, migration caps, random
        streams) supplied by the component building the policy; parameters
        from the ``policies`` entry take precedence over it.
        """
        entry = self._policy_entry(kind)
        # Re-validate here so invalid post-construction mutations of the
        # legacy fields or the block fail with the alternatives listed.
        spec = validate_policy_selection(kind, entry)
        params = {key: value for key, value in entry.items() if key != "name"}
        accepted = set(spec.param_names())
        merged = {
            key: value
            for key, value in extra.items()
            if spec.accepts_extra or key in accepted
        }
        merged.update(params)
        return spec.build(**merged)
