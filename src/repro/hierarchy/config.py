"""Administrator configuration of a Snooze deployment.

Everything the paper describes as "system administrator specified" lives here:
heartbeat intervals, failure-detection timeouts, monitoring and summary
periods, the scheduling policies enabled at each level, the reconfiguration
interval and the energy-management settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.energy.power_manager import PowerManagerConfig
from repro.network.transport import NetworkConfig
from repro.scheduling.thresholds import UtilizationThresholds


@dataclass
class HierarchyConfig:
    """All knobs of a Snooze deployment in one place."""

    # ------------------------------------------------------------ heartbeats
    #: Interval between Group Leader heartbeats (multicast to GMs, EPs, LCs).
    gl_heartbeat_interval: float = 2.0
    #: Interval between Group Manager heartbeats (to the GL and to its LCs).
    gm_heartbeat_interval: float = 2.0
    #: Interval between Local Controller heartbeats (to the assigned GM).
    lc_heartbeat_interval: float = 2.0
    #: Missing-heartbeat timeout after which a component is declared failed.
    heartbeat_timeout: float = 8.0
    #: Coordination (ZooKeeper) session timeout for Group Managers.
    session_timeout: float = 10.0

    # ------------------------------------------------------------ monitoring
    #: LC monitoring interval (sampling VMs and reporting to the GM).
    monitoring_interval: float = 10.0
    #: GM summary interval (aggregated capacity report to the GL).
    summary_interval: float = 10.0
    #: Sliding window length (number of samples) for demand estimation.
    estimation_window: int = 12
    #: Demand estimator name: mean, max, ewma, percentile.
    estimator: str = "ewma"

    # ------------------------------------------------------------ scheduling
    #: Group Leader dispatching policy: round-robin, least-loaded, first-fit.
    dispatching_policy: str = "first-fit"
    #: Group Manager placement policy: first-fit, best-fit, worst-fit, round-robin.
    placement_policy: str = "first-fit"
    #: Utilization thresholds for overload/underload detection.
    thresholds: UtilizationThresholds = field(default_factory=UtilizationThresholds)
    #: Enable overload/underload relocation (Section II.C event-based policies).
    relocation_enabled: bool = True
    #: Periodic reconfiguration (consolidation) interval in seconds; None disables it.
    reconfiguration_interval: Optional[float] = None
    #: Consolidation algorithm for reconfiguration: "aco", "ffd", "bfd".
    reconfiguration_algorithm: str = "aco"
    #: Cap on migrations per reconfiguration round (None = unlimited).
    max_migrations_per_round: Optional[int] = None

    # ---------------------------------------------------------------- energy
    #: Energy management settings (idle threshold, power state, reserve hosts).
    power_manager: PowerManagerConfig = field(default_factory=lambda: PowerManagerConfig(enabled=False))
    #: Interval of the cluster-wide energy meter sampling.
    energy_sample_interval: float = 60.0

    # --------------------------------------------------------------- network
    #: Simulated management-network characteristics.
    network: NetworkConfig = field(default_factory=NetworkConfig)

    # ----------------------------------------------------------------- sizing
    #: Number of Entry Point replicas.
    entry_points: int = 1
    #: LC -> GM assignment policy at the GL: "round-robin" or "least-loaded".
    assignment_policy: str = "round-robin"

    # ------------------------------------------------------------------ misc
    #: RPC timeout for commands (LC start/migrate, join, assignment).
    rpc_timeout: float = 5.0
    #: End-to-end timeout for a placement probe (GL -> GM).  Must be generous
    #: enough to cover a host wake-up when energy management is enabled
    #: (Section III: hosts are woken on demand for incoming placements).
    placement_timeout: float = 90.0
    #: Base seed for all random streams of the deployment.
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "gl_heartbeat_interval",
            "gm_heartbeat_interval",
            "lc_heartbeat_interval",
            "heartbeat_timeout",
            "session_timeout",
            "monitoring_interval",
            "summary_interval",
            "energy_sample_interval",
            "rpc_timeout",
            "placement_timeout",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.heartbeat_timeout <= max(
            self.gl_heartbeat_interval, self.gm_heartbeat_interval, self.lc_heartbeat_interval
        ):
            raise ValueError("heartbeat_timeout must exceed every heartbeat interval")
        if self.estimation_window <= 0:
            raise ValueError("estimation_window must be positive")
        if self.entry_points <= 0:
            raise ValueError("entry_points must be positive")
        if self.reconfiguration_interval is not None and self.reconfiguration_interval <= 0:
            raise ValueError("reconfiguration_interval must be positive or None")
