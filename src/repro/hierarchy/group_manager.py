"""Group Manager (and, when elected, Group Leader).

Paper Section II.A: "Each GM manages a subset of LCs and is in charge of the
following tasks: (1) VM monitoring data reception from LCs, (2) Resource
demand estimation and VM scheduling, (3) energy management, and (4) sending
resource management commands to the LCs."

Section II.D: "When a GM first attempts to join the system, a leader election
algorithm is triggered ... If a leader exists, the GM joins it and starts
sending GM heartbeats. Otherwise, it becomes the new GL."  The reproduction
follows that design literally: every :class:`GroupManager` is an election
candidate; the elected one additionally activates the Group Leader role
(dispatching, LC-to-GM assignment, GM failure detection, GL heartbeats) while
continuing to manage its own Local Controllers.  This dual role is a small,
documented deviation from the original deployment practice (where the GL's
LCs would rejoin other GMs) that keeps single-GM deployments functional.

Failure model (Section II.E): killing a GM stops its timers, so its
coordination session expires (triggering a new election if it was the leader)
and its heartbeats stop (so its LCs rejoin through the GL and the GL removes
it from dispatching).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster.node import PhysicalNode
from repro.cluster.vm import VirtualMachine
from repro.coordination.election import LeaderElection
from repro.coordination.znodes import CoordinationService
from repro.energy.accounting import EnergyMeter
from repro.energy.power_manager import PowerStateManager
from repro.hierarchy.common import Component, heartbeat_leases
from repro.hierarchy.config import HierarchyConfig
from repro.hierarchy.local_controller import (
    GL_HEARTBEAT_GROUP,
    NODE_REGISTRY_SERVICE,
    gm_heartbeat_group,
)
from repro.metrics.recorder import EventLog
from repro.monitoring.summary import GroupManagerSummary
from repro.network.message import Message, MessageType
from repro.network.transport import Network
from repro.policies import DecisionPlane
from repro.policies.registry import instrument_policy
from repro.simulation.batch import DeadlineTable
from repro.simulation.engine import Event, Simulator
from repro.simulation.timers import PeriodicTimer, Timeout


class GroupManager(Component):
    """One Group Manager; activates the Group Leader role when elected."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        network: Network,
        coordination: CoordinationService,
        config: Optional[HierarchyConfig] = None,
        event_log: Optional[EventLog] = None,
        consolidation_rng=None,
    ) -> None:
        super().__init__(name, sim, network, event_log)
        self.config = config or HierarchyConfig()
        self.coordination = coordination
        self._consolidation_rng = consolidation_rng

        # --- GM state: the Local Controllers this GM manages.
        #: lc_name -> {"node": PhysicalNode, "summary_view": dict | None, "timeout": Timeout}
        #: where summary_view holds the latest monitoring report's capacity
        #: vectors pre-parsed to arrays (None until the first report arrives).
        self.local_controllers: Dict[str, dict] = {}
        #: lc_name -> bound ``restart`` of that LC's failure-detector handle.
        #: The heartbeat hot path is two orders of magnitude more frequent
        #: than any other GM message; this flat index spares it the record
        #: dict and handle dereferences (which fall out of cache at fleet
        #: scale).  Maintained wherever ``record["timeout"]`` changes hands.
        self._lc_restart: Dict[str, Callable[[], None]] = {}
        #: Resident decision arrays over this GM's LC nodes: placement views,
        #: the node->LC index and the join-ordered node list all come from
        #: here instead of per-event rebuilds (ROADMAP item 2).
        self.plane = DecisionPlane()
        #: Cached own-group summary, reused between summary ticks by the
        #: leader's dispatching path; invalidated on LC join/removal.
        self._summary_cache: Optional[GroupManagerSummary] = None
        #: Number of full summary builds (regression-tested: dispatching a
        #: burst of submissions must not rebuild per submission).
        self.summary_rebuilds = 0
        # Coalesced failure detection: all of this GM's per-LC (and, as
        # leader, per-GM) heartbeat deadlines live in two deadline arrays with
        # one pending simulator event each, instead of one Timeout per peer.
        if self.config.coalesce_events:
            self._lc_deadlines: Optional[DeadlineTable] = DeadlineTable(
                sim, name=f"{name}:lc-heartbeats"
            )
            self._gm_deadlines: Optional[DeadlineTable] = DeadlineTable(
                sim, name=f"{name}:gm-heartbeats"
            )
        else:
            self._lc_deadlines = None
            self._gm_deadlines = None
        self.current_gl: Optional[str] = None
        # Every decision point is a registered policy, built through the one
        # registry path (HierarchyConfig.build_policy -> repro.policies).
        self.placement_policy = self.config.build_policy("placement")
        self.overload_policy = self.config.build_policy(
            "overload-relocation", thresholds=self.config.thresholds
        )
        self.underload_policy = self.config.build_policy(
            "underload-relocation", thresholds=self.config.thresholds
        )
        self.reconfiguration_policy = self.config.build_policy(
            "reconfiguration",
            thresholds=self.config.thresholds,
            max_migrations=self.config.max_migrations_per_round,
            rng=self._consolidation_rng,
        )
        self.power_manager: Optional[PowerStateManager] = None
        #: Statistics for the experiments.
        self.placements_performed = 0
        self.placement_failures = 0
        self.relocations_performed = 0
        self.reconfiguration_rounds = 0

        # --- GL state (only used while this GM is the elected leader).
        self.is_leader = False
        self.gm_summaries: Dict[str, GroupManagerSummary] = {}
        #: GMs known to the leader (from their heartbeats), used for LC assignment.
        self.known_gms: set = set()
        #: Assignments handed to GMs that have not yet sent their first
        #: summary -- without this a freshly joined GM reads as "0 LCs" and
        #: captures every concurrently joining LC until its first summary
        #: arrives (thundering-herd imbalance).  Cleared per GM when the
        #: summary lands (the summary then carries the real count).
        self._pending_assignments: Dict[str, int] = {}
        self._gm_timeouts: Dict[str, Timeout] = {}
        self.dispatching_policy = self.config.build_policy("dispatching")
        self.assignment_policy = self.config.build_policy("assignment")
        self._gl_heartbeat_timer: Optional[PeriodicTimer] = None
        self.submissions_dispatched = 0

        # Decision-latency metrics: every policy decision call is timed into
        # the ``policy_decision_seconds`` histogram, labeled by kind and
        # component (instance-level shadowing -- ``policy.thresholds``
        # mutation by runtime control keeps working).
        if self.obs is not None and self.obs.registry is not None:
            for kind, policy in (
                ("placement", self.placement_policy),
                ("overload-relocation", self.overload_policy),
                ("underload-relocation", self.underload_policy),
                ("reconfiguration", self.reconfiguration_policy),
                ("dispatching", self.dispatching_policy),
                ("assignment", self.assignment_policy),
            ):
                instrument_policy(policy, self.obs.decision_observer(kind, self.name))

        # --- Election.
        self.election: Optional[LeaderElection] = None

        # --- RPC surface.
        self.rpc.register_operation("join_lc", self._op_join_lc)
        self.rpc.register_operation("place_vm", self._op_place_vm)
        self.rpc.register_operation("assign_lc", self._op_assign_lc)
        self.rpc.register_operation("submit_vm", self._op_submit_vm)
        self.rpc.register_operation("describe", self._op_describe)

    # ------------------------------------------------------------------ setup
    def on_start(self) -> None:
        # Join (or re-join) the leader election.
        self.election = LeaderElection(
            self.coordination,
            candidate_id=self.name,
            session_timeout=self.config.session_timeout,
            on_elected=self._become_leader,
            on_leader_changed=self._leader_changed,
        )
        self.election.join()
        self.multicast.group(GL_HEARTBEAT_GROUP).subscribe(self.name)
        self.add_timer(self.config.gm_heartbeat_interval, self._heartbeat_tick)
        self.add_timer(self.config.summary_interval, self._summary_tick)
        if self.config.reconfiguration_interval is not None:
            self.add_timer(self.config.reconfiguration_interval, self._reconfiguration_tick)
        if self.config.power_manager.enabled:
            energy_meter = (
                self.sim.get_service(EnergyMeter.SERVICE_NAME)
                if self.sim.has_service(EnergyMeter.SERVICE_NAME)
                else None
            )
            self.power_manager = PowerStateManager(
                self.sim,
                nodes=[],
                config=self.config.power_manager,
                energy_meter=energy_meter,
            )

    def on_fail(self) -> None:
        # The coordination session is simply no longer refreshed; it will
        # expire on its own, removing the ephemeral election node (and the
        # leadership, if held).  Heartbeats stop because timers are stopped.
        self.is_leader = False
        if self._gl_heartbeat_timer is not None:
            self._gl_heartbeat_timer.stop()
            self._gl_heartbeat_timer = None
        if self.power_manager is not None:
            self.power_manager.stop()
            self.power_manager = None
        for record in self.local_controllers.values():
            self.discard_timeout(record["timeout"])
        leases = heartbeat_leases(self.sim)
        for lc_name in self.local_controllers:
            leases.pop((self.name, lc_name), None)
        self.local_controllers.clear()
        self._lc_restart.clear()
        self.plane.clear()
        self._summary_cache = None
        for timeout in self._gm_timeouts.values():
            self.discard_timeout(timeout)
        self._gm_timeouts.clear()
        self.gm_summaries.clear()
        self.known_gms.clear()
        self._pending_assignments.clear()
        self.multicast.group(GL_HEARTBEAT_GROUP).unsubscribe(self.name)

    # --------------------------------------------------------------- election
    def _become_leader(self) -> None:
        """Switch to Group Leader mode (paper Section II.E: 'switches to GL mode')."""
        self.is_leader = True
        self.current_gl = self.name
        self.log_event("elected_group_leader")
        if self.tracer is not None:
            self.tracer.instant("elected_group_leader", self.name)
        if self.name not in self.gm_summaries:
            self.gm_summaries[self.name] = self._own_summary()
        if self._gl_heartbeat_timer is None:
            self._gl_heartbeat_timer = self.add_timer(
                self.config.gl_heartbeat_interval, self._gl_heartbeat_tick, start_immediately=True
            )

    def _leader_changed(self, leader: str) -> None:
        leader_changed = leader != self.current_gl
        self.current_gl = leader
        if leader_changed and leader != self.name and not self.is_leader:
            self._announce_to_leader(leader)

    def _announce_to_leader(self, leader: str) -> None:
        """Immediately introduce this GM (heartbeat + summary) to a newly discovered leader.

        Without this, a freshly elected Group Leader would not know which GMs
        exist until their next periodic heartbeat, and would assign every
        joining LC to itself in the meantime.
        """
        self.network.send(
            Message(
                msg_type=MessageType.GM_HEARTBEAT,
                sender=self.name,
                recipient=leader,
                payload={"gm": self.name},
            ),
            size_bytes=128,
        )
        self.network.send(
            Message(
                msg_type=MessageType.GM_SUMMARY,
                sender=self.name,
                recipient=leader,
                payload=self._build_summary().to_payload(),
            ),
            size_bytes=512,
        )

    # -------------------------------------------------------------- heartbeats
    def _heartbeat_tick(self) -> None:
        """GM heartbeat: keep the election session alive, announce to LCs and the GL."""
        if self.election is not None:
            self.election.keep_alive()
        # Heartbeat to this GM's Local Controllers.
        self.multicast.group(gm_heartbeat_group(self.name)).publish(
            self.name, MessageType.GM_HEARTBEAT, payload={"gm": self.name}
        )
        # Heartbeat to the Group Leader (unless we are the leader).
        if not self.is_leader and self.current_gl is not None:
            self.network.send(
                Message(
                    msg_type=MessageType.GM_HEARTBEAT,
                    sender=self.name,
                    recipient=self.current_gl,
                    payload={"gm": self.name},
                ),
                size_bytes=128,
            )

    def _gl_heartbeat_tick(self) -> None:
        """GL heartbeat: announce leadership to GMs, LCs and Entry Points."""
        if not self.is_leader:
            return
        self.multicast.group(GL_HEARTBEAT_GROUP).publish(
            self.name, MessageType.GL_HEARTBEAT, payload={"gl": self.name}
        )

    def _arm_heartbeat_deadline(self, table: Optional[DeadlineTable], callback, peer: str):
        """A heartbeat failure detector: a table entry when coalescing, else a Timeout."""
        if table is not None:
            return self.add_deadline(table, self.config.heartbeat_timeout, callback, peer)
        return self.add_timeout(self.config.heartbeat_timeout, callback, peer)

    # --------------------------------------------------------------- messages
    def handle_message(self, message: Message) -> None:
        if message.msg_type is MessageType.LC_HEARTBEAT:
            self._on_lc_heartbeat(message)
        elif message.msg_type is MessageType.LC_MONITORING:
            self._on_lc_monitoring(message)
        elif message.msg_type is MessageType.OVERLOAD_EVENT:
            self._on_overload(message)
        elif message.msg_type is MessageType.UNDERLOAD_EVENT:
            self._on_underload(message)
        elif message.msg_type is MessageType.GL_HEARTBEAT:
            self._on_gl_heartbeat(message)
        elif message.msg_type is MessageType.GM_HEARTBEAT:
            self._on_gm_heartbeat(message)
        elif message.msg_type is MessageType.GM_SUMMARY:
            self._on_gm_summary(message)

    def _on_gl_heartbeat(self, message: Message) -> None:
        leader = message.payload.get("gl") if message.payload else message.sender
        if leader != self.name:
            leader_changed = leader != self.current_gl
            self.current_gl = leader
            if leader_changed and not self.is_leader:
                self._announce_to_leader(leader)
            if self.is_leader:
                # Another leader exists (e.g. we were partitioned and a new one
                # was elected).  Defer to the election outcome: if our election
                # node is gone, step down.
                if self.election is None or not self.election.is_leader:
                    self._step_down()

    def _step_down(self) -> None:
        self.is_leader = False
        if self._gl_heartbeat_timer is not None:
            self._gl_heartbeat_timer.stop()
            self._gl_heartbeat_timer = None
        for timeout in self._gm_timeouts.values():
            self.discard_timeout(timeout)
        self._gm_timeouts.clear()
        self.gm_summaries.clear()
        self.known_gms.clear()
        self._pending_assignments.clear()
        self.log_event("stepped_down_as_leader")

    # ----------------------------------------------------- GL: GM supervision
    def _on_gm_heartbeat(self, message: Message) -> None:
        if not self.is_leader:
            return
        gm_name = message.payload.get("gm", message.sender)
        self.known_gms.add(gm_name)
        if gm_name not in self._gm_timeouts:
            self._gm_timeouts[gm_name] = self._arm_heartbeat_deadline(
                self._gm_deadlines, self._gm_failed, gm_name
            )
        else:
            self._gm_timeouts[gm_name].restart()

    def _gm_failed(self, gm_name: str) -> None:
        """A managed GM stopped heart-beating: remove it from dispatching (Section II.E)."""
        if not self.is_leader:
            return
        self.gm_summaries.pop(gm_name, None)
        self.known_gms.discard(gm_name)
        self._pending_assignments.pop(gm_name, None)
        timeout = self._gm_timeouts.pop(gm_name, None)
        if timeout is not None:
            self.discard_timeout(timeout)
        self.log_event("gm_removed", gm=gm_name)
        if self.tracer is not None:
            self.tracer.instant("gm_failure_detected", self.name, gm=gm_name)

    def _on_gm_summary(self, message: Message) -> None:
        if not self.is_leader:
            return
        summary = GroupManagerSummary.from_payload(message.payload)
        self.gm_summaries[summary.gm_id] = summary
        self.known_gms.add(summary.gm_id)
        # The summary carries the authoritative LC count; assignments made
        # while this GM was summary-less are now folded in.
        self._pending_assignments.pop(summary.gm_id, None)

    # --------------------------------------------------------- LC supervision
    def _op_join_lc(self, lc_name: str, node_id: str) -> dict:
        """An LC joins this GM (Section II.D, last step of LC self-organization)."""
        registry: Dict[str, PhysicalNode] = self.sim.get_service(NODE_REGISTRY_SERVICE)
        node = registry.get(node_id)
        if node is None:
            return {"joined": False, "reason": f"unknown node {node_id}"}
        if lc_name in self.local_controllers:
            self.local_controllers[lc_name]["timeout"].restart()
            return {"joined": True, "gm": self.name}
        timeout = self._arm_heartbeat_deadline(self._lc_deadlines, self._lc_failed, lc_name)
        self.local_controllers[lc_name] = {"node": node, "summary_view": None, "timeout": timeout}
        self._lc_restart[lc_name] = timeout.restart
        if self._lc_deadlines is not None:
            # Publish the detector handle as a heartbeat lease: on a
            # deterministic network the LC re-arms it at delivery time
            # instead of sending a message per heartbeat interval.
            heartbeat_leases(self.sim)[(self.name, lc_name)] = timeout
        self.plane.add(lc_name, node)
        self._summary_cache = None
        if self.power_manager is not None:
            self.power_manager.nodes.append(node)
        self.log_event("lc_joined_gm", lc=lc_name, node=node_id)
        return {"joined": True, "gm": self.name}

    def _lc_failed(self, lc_name: str) -> None:
        """An LC stopped heart-beating: invalidate its contact information (Section II.E)."""
        record = self.local_controllers.pop(lc_name, None)
        self._lc_restart.pop(lc_name, None)
        heartbeat_leases(self.sim).pop((self.name, lc_name), None)
        if record is None:
            return
        self.plane.remove(lc_name)
        self._summary_cache = None
        self.discard_timeout(record["timeout"])
        if self.power_manager is not None and record["node"] in self.power_manager.nodes:
            self.power_manager.nodes.remove(record["node"])
        self.log_event("lc_removed", lc=lc_name)
        if self.tracer is not None:
            self.tracer.instant("lc_failure_detected", self.name, lc=lc_name)

    def _on_lc_heartbeat(self, message: Message) -> None:
        restart = self._lc_restart.get(message.sender)
        if restart is not None:
            restart()

    def _on_lc_monitoring(self, message: Message) -> None:
        record = self.local_controllers.get(message.sender)
        if record is not None:
            payload = message.payload
            # Keep only the capacity vectors, pre-parsed to arrays at receive
            # time; summary aggregation (every summary_interval) then sums
            # arrays instead of re-parsing lists report after report, and the
            # rest of the payload is not retained.
            record["summary_view"] = {
                "capacity": np.asarray(payload["capacity"], dtype=float),
                "reserved": np.asarray(payload["reserved"], dtype=float),
                "used": np.asarray(payload["used"], dtype=float),
                "vm_count": payload.get("vm_count", 0),
            }

    # ------------------------------------------------------------ GM: summary
    def managed_nodes(self) -> List[PhysicalNode]:
        """The physical nodes of this GM's joined Local Controllers (join order).

        The list is the decision plane's resident join-ordered list -- no
        per-event rebuild; callers must not mutate it.
        """
        return self.plane.nodes_in_join_order()

    def _build_summary(self) -> GroupManagerSummary:
        reports = []
        for record in self.local_controllers.values():
            node: PhysicalNode = record["node"]
            if record["summary_view"] is not None:
                # The pre-parsed array view of the last report (same values;
                # np.asarray on an ndarray is a no-op in from_reports).
                reports.append(record["summary_view"])
            else:
                # No monitoring data yet: report the node's static state.
                reports.append(
                    {
                        "capacity": node.capacity.values.tolist(),
                        "reserved": node.reserved().values.tolist(),
                        "used": node.used().values.tolist(),
                        "vm_count": node.vm_count,
                    }
                )
        summary = GroupManagerSummary.from_reports(self.name, self.sim.now, reports)
        self.summary_rebuilds += 1
        self._summary_cache = summary
        return summary

    def _own_summary(self) -> GroupManagerSummary:
        """This GM's summary, reusing the last build when still valid.

        The cache is refreshed by every :meth:`_build_summary` call (summary
        ticks, leader announcements) and invalidated on LC join/removal, so a
        burst of dispatched submissions reads one summary instead of
        re-aggregating every LC record per submission.
        """
        if self._summary_cache is None:
            return self._build_summary()
        return self._summary_cache

    def _summary_tick(self) -> None:
        summary = self._build_summary()
        if self.is_leader:
            self.gm_summaries[self.name] = summary
        elif self.current_gl is not None:
            self.network.send(
                Message(
                    msg_type=MessageType.GM_SUMMARY,
                    sender=self.name,
                    recipient=self.current_gl,
                    payload=summary.to_payload(),
                ),
                size_bytes=512,
            )

    # --------------------------------------------------- GL: LC assignment
    def _op_assign_lc(self, lc_name: str, capacity=None) -> dict:  # noqa: ARG002 - capacity reserved for future policies
        """Assign a joining LC to a GM via the registered ``assignment`` policy (Section II.D)."""
        if not self.is_leader:
            return {"gm": None, "reason": "not the group leader"}
        known_gms = sorted(self.known_gms | set(self.gm_summaries) | {self.name})

        def lc_count(gm: str) -> int:
            if gm == self.name:
                return len(self.local_controllers)
            if gm in self.gm_summaries:
                return self.gm_summaries[gm].local_controller_count
            # A GM that heart-beated but has not yet sent its first summary:
            # count the assignments already handed to it instead of 0, so K
            # simultaneous joins spread instead of all piling onto it.
            return self._pending_assignments.get(gm, 0)

        chosen = self.assignment_policy.choose(
            known_gms, {gm: lc_count(gm) for gm in known_gms}
        )
        if chosen is not None and chosen != self.name and chosen not in self.gm_summaries:
            self._pending_assignments[chosen] = self._pending_assignments.get(chosen, 0) + 1
        return {"gm": chosen}

    # -------------------------------------------------- GL: VM dispatching
    def _op_submit_vm(self, vm: VirtualMachine) -> Event:
        """Dispatch a submitted VM to a GM (candidate list + linear search, Section II.C)."""
        reply = self.sim.event()
        ctx = None
        if self.tracer is not None:
            span = self.tracer.begin("vm_dispatch", self.name, vm=vm.vm_id)
            self.tracer.end_on(span, reply)
            ctx = span.ctx
        if not self.is_leader:
            self.sim.trigger(reply, {"placed": False, "reason": "not the group leader"})
            return reply
        self.submissions_dispatched += 1
        summaries = dict(self.gm_summaries)
        if self.name not in summaries:
            # ``setdefault`` would rebuild the summary eagerly per submission
            # only to discard it; the cached one serves the rare miss.
            summaries[self.name] = self._own_summary()
        decision = self.dispatching_policy.decide(vm.requested, summaries)
        if decision.empty:
            self.sim.trigger(
                reply, {"placed": False, "reason": decision.reason or "no group managers"}
            )
            return reply
        self._probe_candidates(vm, decision.candidates, 0, reply, ctx)
        return reply

    def _probe_candidates(
        self, vm: VirtualMachine, candidates: List[str], index: int, reply: Event, ctx=None
    ) -> None:
        if index >= len(candidates):
            self.sim.trigger(reply, {"placed": False, "reason": "all group managers rejected the VM"})
            return
        gm_name = candidates[index]
        self.rpc.call(
            gm_name,
            "place_vm",
            kwargs={"vm": vm},
            on_reply=lambda result: self._on_probe_reply(vm, candidates, index, reply, result, ctx),
            on_error=lambda _err: self._probe_candidates(vm, candidates, index + 1, reply, ctx),
            on_timeout=lambda: self._probe_candidates(vm, candidates, index + 1, reply, ctx),
            timeout=self.config.placement_timeout,
            trace_ctx=ctx,
        )

    def _on_probe_reply(
        self, vm: VirtualMachine, candidates: List[str], index: int, reply: Event, result, ctx=None
    ) -> None:
        if isinstance(result, dict) and result.get("placed"):
            result = dict(result)
            result.setdefault("gm", candidates[index])
            self.sim.trigger(reply, result)
        else:
            self._probe_candidates(vm, candidates, index + 1, reply, ctx)

    # ------------------------------------------------------- GM: VM placement
    def _op_place_vm(self, vm: VirtualMachine) -> Event:
        """Place a VM on one of this GM's Local Controllers (Section II.C)."""
        reply = self.sim.event()
        ctx = None
        if self.tracer is not None:
            span = self.tracer.begin("vm_placement", self.name, vm=vm.vm_id)
            self.tracer.end_on(span, reply)
            ctx = span.ctx
        self._attempt_placement(vm, reply, allow_wakeup=True, ctx=ctx)
        return reply

    def _attempt_placement(
        self,
        vm: VirtualMachine,
        reply: Event,
        allow_wakeup: bool,
        exclude: Optional[set] = None,
        ctx=None,
    ) -> None:
        exclude = exclude or set()
        # Resident arrays instead of a per-attempt ``ClusterView.from_nodes``
        # rebuild; excluded LCs are masked unplaceable, which yields the same
        # feasible set (and thus the same decision) as omitting their rows.
        view = self.plane.view(exclude_lcs=exclude)
        decision = self.placement_policy.decide(vm, view)
        chosen = view.node_by_id(decision.node_id) if decision.placed else None
        if chosen is None:
            # Not enough powered-on capacity: wake a suspended host (Section III)
            # and retry when it is up, once.
            if allow_wakeup and self.power_manager is not None:
                woken = self.power_manager.wake_one(
                    on_ready=lambda _node: self._attempt_placement(
                        vm, reply, allow_wakeup=True, exclude=exclude, ctx=ctx
                    )
                )
                if woken:
                    return
            self.placement_failures += 1
            self.sim.trigger(reply, {"placed": False, "reason": "no local controller fits the VM"})
            return
        lc_name = self._lc_of_node(chosen)
        if lc_name is None:
            self.placement_failures += 1
            self.sim.trigger(reply, {"placed": False, "reason": "chosen node has no local controller"})
            return
        self.rpc.call(
            lc_name,
            "start_vm",
            kwargs={"vm": vm},
            on_reply=lambda result: self._on_start_reply(vm, lc_name, reply, result, exclude, ctx),
            on_error=lambda _err: self._retry_placement(vm, reply, exclude, lc_name, ctx),
            on_timeout=lambda: self._retry_placement(vm, reply, exclude, lc_name, ctx),
            timeout=self.config.rpc_timeout,
            trace_ctx=ctx,
        )

    def _on_start_reply(
        self, vm: VirtualMachine, lc_name: str, reply: Event, result, exclude: set, ctx=None
    ) -> None:
        if isinstance(result, dict) and result.get("accepted"):
            self.placements_performed += 1
            self.sim.trigger(
                reply,
                {"placed": True, "gm": self.name, "lc": lc_name, "node_id": result.get("node_id")},
            )
        else:
            self._retry_placement(vm, reply, exclude, lc_name, ctx)

    def _retry_placement(
        self, vm: VirtualMachine, reply: Event, exclude: set, failed_lc: str, ctx=None
    ) -> None:
        # The rejected LC is excluded; wake-ups stay allowed so a burst of
        # submissions larger than the powered-on capacity fans out over
        # additional hosts (each failed attempt wakes at most one more host,
        # and the suspended pool is finite, so this terminates).
        exclude = set(exclude) | {failed_lc}
        self._attempt_placement(vm, reply, allow_wakeup=True, exclude=exclude, ctx=ctx)

    def _lc_of_node(self, node: PhysicalNode) -> Optional[str]:
        """The LC managing ``node`` via the plane's resident index (was an O(n) scan)."""
        return self.plane.lc_of(node)

    # --------------------------------------------------------- GM: relocation
    def _on_overload(self, message: Message) -> None:
        self._on_anomaly(message, self.overload_policy, "overload")

    def _on_underload(self, message: Message) -> None:
        self._on_anomaly(message, self.underload_policy, "underload")

    def _on_anomaly(self, message: Message, policy, reason: str) -> None:
        """Shared overload/underload handling: decide moves and execute them."""
        if not self.config.relocation_enabled:
            return
        record = self.local_controllers.get(message.sender)
        if record is None:
            return
        source: PhysicalNode = record["node"]
        if self.tracer is None:
            decision = policy.decide(source, self.managed_nodes())
            self._execute_moves(decision.moves, reason=reason)
            return
        with self.tracer.span(f"{reason}_relocation", self.name, node=source.node_id):
            decision = policy.decide(source, self.managed_nodes())
            self._execute_moves(decision.moves, reason=reason)

    def _execute_moves(self, moves, reason: str) -> int:
        """Send migrate commands to the source LCs for each planned move."""
        executed = 0
        for vm, source, destination in moves:
            source_lc = self._lc_of_node(source)
            if source_lc is None:
                continue
            self.rpc.call(
                source_lc,
                "migrate_vm",
                kwargs={"vm_id": vm.vm_id, "destination_node_id": destination.node_id},
                timeout=self.config.rpc_timeout,
            )
            executed += 1
        if executed:
            self.relocations_performed += executed
            self.log_event("relocation", reason=reason, migrations=executed)
        return executed

    # ---------------------------------------------------- GM: reconfiguration
    def _reconfiguration_tick(self) -> None:
        """Periodic consolidation of this GM's moderately loaded hosts (Section II.C)."""
        if self.tracer is None:
            self._run_reconfiguration()
            return
        # ACO cycle phases as nested spans: the cycle root, the planning phase
        # and (when the plan is non-empty) the execution phase with the
        # migrate RPCs causally attached via the active context.
        with self.tracer.span("reconfiguration_cycle", self.name):
            self._run_reconfiguration()

    def _run_reconfiguration(self) -> None:
        nodes = self.managed_nodes()
        if len(nodes) < 2:
            return
        # The resident plane arrays, gathered into join order, replace the
        # per-round ``from_nodes`` snapshot (parity-tested byte-identical).
        view = self.plane.join_order_view()
        tracer = self.tracer
        if tracer is None:
            plan = self.reconfiguration_policy.plan(nodes, view=view)
        else:
            with tracer.span("reconfiguration_plan", self.name, nodes=len(nodes)):
                plan = self.reconfiguration_policy.plan(nodes, view=view)
        self.reconfiguration_rounds += 1
        if self.sim.has_service(EnergyMeter.SERVICE_NAME):
            runtime = plan.consolidation_summary.get("runtime_seconds", 0.0)
            self.sim.get_service(EnergyMeter.SERVICE_NAME).charge_computation_runtime(runtime)
        if plan.empty:
            return
        if tracer is None:
            executed = self._execute_moves(plan.moves, reason="reconfiguration")
        else:
            with tracer.span("reconfiguration_execute", self.name, moves=len(plan.moves)):
                executed = self._execute_moves(plan.moves, reason="reconfiguration")
        self.log_event(
            "reconfiguration",
            migrations=executed,
            hosts_before=plan.hosts_before,
            hosts_after=plan.hosts_after,
        )

    # ------------------------------------------------------------ diagnostics
    def _op_describe(self) -> dict:
        """Diagnostic snapshot used by the CLI and tests."""
        return {
            "name": self.name,
            "is_leader": self.is_leader,
            "local_controllers": sorted(self.local_controllers),
            "known_gms": sorted(self.gm_summaries) if self.is_leader else [],
            "placements": self.placements_performed,
            "relocations": self.relocations_performed,
        }
