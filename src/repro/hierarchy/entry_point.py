"""Entry Points: the replicated client layer.

Paper Section II.A: "A client layer provides the user interface which is
implemented by a predefined number of replicated Entry Points (EPs) and
queried by the clients to discover the current GL."

An Entry Point subscribes to the Group Leader heartbeat group, remembers the
most recent leader and offers two RPC operations to clients:

* ``get_leader`` -- return the current Group Leader's name;
* ``submit_vm`` -- forward a VM submission to the current leader and relay the
  (deferred) outcome back to the client, so clients never need to know which
  GM currently leads.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.vm import VirtualMachine
from repro.hierarchy.common import Component
from repro.hierarchy.config import HierarchyConfig
from repro.hierarchy.local_controller import GL_HEARTBEAT_GROUP
from repro.metrics.recorder import EventLog
from repro.network.message import Message, MessageType
from repro.network.transport import Network
from repro.simulation.engine import Event, Simulator


class EntryPoint(Component):
    """One replicated Entry Point."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        network: Network,
        config: Optional[HierarchyConfig] = None,
        event_log: Optional[EventLog] = None,
    ) -> None:
        super().__init__(name, sim, network, event_log)
        self.config = config or HierarchyConfig()
        self.current_gl: Optional[str] = None
        self.forwarded_submissions = 0
        self.rpc.register_operation("get_leader", self._op_get_leader)
        self.rpc.register_operation("submit_vm", self._op_submit_vm)

    def on_start(self) -> None:
        self.multicast.group(GL_HEARTBEAT_GROUP).subscribe(self.name)

    def on_fail(self) -> None:
        self.multicast.group(GL_HEARTBEAT_GROUP).unsubscribe(self.name)

    # --------------------------------------------------------------- messages
    def handle_message(self, message: Message) -> None:
        if message.msg_type is MessageType.GL_HEARTBEAT:
            leader = message.payload.get("gl") if message.payload else message.sender
            if leader != self.current_gl:
                self.log_event("leader_discovered", leader=leader)
            self.current_gl = leader

    # ------------------------------------------------------------------- RPC
    def _op_get_leader(self) -> dict:
        """Tell a client who currently leads (None if no heartbeat seen yet)."""
        return {"leader": self.current_gl}

    def _op_submit_vm(self, vm: VirtualMachine) -> Event:
        """Forward a VM submission to the current Group Leader."""
        reply = self.sim.event()
        if self.current_gl is None:
            self.sim.trigger(reply, {"placed": False, "reason": "no group leader known"})
            return reply
        self.forwarded_submissions += 1
        ctx = None
        if self.tracer is not None:
            span = self.tracer.begin("submit_forward", self.name, vm=vm.vm_id, gl=self.current_gl)
            self.tracer.end_on(span, reply)
            ctx = span.ctx
        self.rpc.call(
            self.current_gl,
            "submit_vm",
            kwargs={"vm": vm},
            trace_ctx=ctx,
            on_reply=lambda result: self.sim.trigger(reply, result),
            on_error=lambda error: self.sim.trigger(reply, {"placed": False, "reason": error}),
            on_timeout=lambda: self.sim.trigger(
                reply, {"placed": False, "reason": "group leader timeout"}
            ),
            timeout=self.config.placement_timeout + 2 * self.config.rpc_timeout,
        )
        return reply
