"""Local Controller: the per-node Snooze agent.

Paper Section II.A: "each node is controlled by a so-called Local Controller
(LC). ... LCs enforce VM and host management commands coming from the GM.
Moreover, they detect local overload/underload anomaly situations and report
them to the assigned GM."

Responsibilities implemented here:

* **Self-organization** (Section II.D): listen for Group Leader heartbeats,
  ask the GL for a Group Manager assignment, join that GM and start
  exchanging heartbeats with it; rejoin from scratch whenever the GM's
  heartbeats stop.
* **Monitoring** (Section II.B): sample hosted VMs periodically and send the
  aggregated report to the GM.
* **Anomaly detection** (Section II.C): raise overload / underload events
  with a cool-down so a sustained condition does not flood the GM.
* **Command enforcement**: start/terminate VMs, execute live migrations.
* **Failure semantics** (Section II.E): when the LC crashes its VMs are
  terminated; when it recovers it rejoins the hierarchy empty.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.node import NodeState, PhysicalNode
from repro.cluster.vm import VirtualMachine, VMState
from repro.hierarchy.common import Component, heartbeat_leases
from repro.hierarchy.config import HierarchyConfig
from repro.metrics.recorder import EventLog
from repro.migration.model import MigrationExecutor
from repro.monitoring.arrays import ArrayHostMonitor, TelemetryPlane
from repro.monitoring.collector import HostMonitor
from repro.monitoring.estimators import make_estimator
from repro.network.message import Message, MessageType
from repro.network.transport import Network
from repro.simulation.batch import CoalescedTicker, DeadlineTable
from repro.simulation.engine import Simulator

#: Name of the shared node registry service (node_id -> PhysicalNode).
NODE_REGISTRY_SERVICE = "node_registry"
#: Name of the shared migration executor service.
MIGRATION_SERVICE = "migration"
#: Multicast group on which the Group Leader announces itself.
GL_HEARTBEAT_GROUP = "gl-heartbeat"


def gm_heartbeat_group(gm_name: str) -> str:
    """Name of the per-Group-Manager heartbeat multicast group."""
    return f"gm-heartbeat:{gm_name}"


class LocalController(Component):
    """The agent controlling one physical node."""

    def __init__(
        self,
        name: str,
        node: PhysicalNode,
        sim: Simulator,
        network: Network,
        config: Optional[HierarchyConfig] = None,
        event_log: Optional[EventLog] = None,
    ) -> None:
        super().__init__(name, sim, network, event_log)
        self.node = node
        self.config = config or HierarchyConfig()
        if self.config.telemetry == "arrays":
            # Vectorized telemetry: sample windows and demand estimates live
            # in the deployment-wide TelemetryPlane (bit-identical to the
            # scalar HostMonitor, computed in fleet-sized numpy batches).
            self.monitor = ArrayHostMonitor(
                node,
                TelemetryPlane.shared(
                    sim,
                    self.config.estimation_window,
                    make_estimator(self.config.estimator),
                ),
            )
        else:
            self.monitor = HostMonitor(
                node,
                window=self.config.estimation_window,
                estimator=make_estimator(self.config.estimator),
            )
        self.assigned_gm: Optional[str] = None
        self.current_gl: Optional[str] = None
        #: GM heartbeat failure detector (a Timeout or a DeadlineTable handle).
        self._gm_timeout = None
        #: Heartbeat lease: ``(gm_endpoint, DeadlineHandle)`` of the assigned
        #: GM's detector for this LC -- when held, heartbeats re-arm it
        #: directly at delivery time instead of sending a message.
        self._gm_lease = None
        self._joining = False
        self._last_overload_report = -float("inf")
        self._last_underload_report = -float("inf")
        #: Heartbeat payload (content is constant; reused across sends).
        self._heartbeat_payload = {"node_id": self.node.node_id}
        #: Seconds between repeated anomaly reports for a persisting condition.
        self.anomaly_cooldown = 3 * self.config.monitoring_interval
        #: Open "lc_rejoin" trace span (failure detected -> rejoined), if any.
        self._rejoin_span = None
        self.rpc.register_operation("start_vm", self._op_start_vm)
        self.rpc.register_operation("terminate_vm", self._op_terminate_vm)
        self.rpc.register_operation("migrate_vm", self._op_migrate_vm)
        self.rpc.register_operation("describe", self._op_describe)

    # ---------------------------------------------------------------- startup
    def on_start(self) -> None:
        self.assigned_gm = None
        self._joining = False
        self.multicast.group(GL_HEARTBEAT_GROUP).subscribe(self.name)
        if self.config.coalesce_events:
            # One simulator event per interval group for the whole fleet: LCs
            # registering at the same instant share a tick chain and fire in
            # registration order -- the order dedicated timers would have.
            # The monitoring tick is phased so every LC samples before any LC
            # reports, which lets the telemetry plane estimate the entire
            # fleet in one vectorized batch.
            ticker = CoalescedTicker.shared(self.sim)
            self._timers.append(
                ticker.register(
                    self.config.monitoring_interval,
                    self._monitoring_prepare,
                    self._monitoring_emit,
                    name=f"{self.name}:monitoring",
                )
            )
            self._timers.append(
                ticker.register(
                    self.config.lc_heartbeat_interval,
                    self._send_heartbeat,
                    name=f"{self.name}:heartbeat",
                )
            )
        else:
            self.add_timer(self.config.monitoring_interval, self._monitoring_tick)
            self.add_timer(self.config.lc_heartbeat_interval, self._send_heartbeat)

    def on_fail(self) -> None:
        """A crashed LC loses its VMs (paper: 'in the event of a LC failure, VMs are also terminated')."""
        self.node.state = NodeState.FAILED
        for vm in self.node.evict_all(self.sim.now):
            vm.mark_failed(self.sim.now)
            # Release the telemetry state immediately: a permanently failed
            # LC never ticks again, so its monitor would otherwise pin the
            # lost VMs (and their plane slots) for the rest of the run.
            self.monitor.untrack_vm(vm)
            self.log_event("vm_failed", vm=vm.name, reason="lc_failure")
        self.multicast.group(GL_HEARTBEAT_GROUP).unsubscribe(self.name)
        if self.assigned_gm is not None:
            self.multicast.group(gm_heartbeat_group(self.assigned_gm)).unsubscribe(self.name)
        self.assigned_gm = None
        self._gm_lease = None

    def recover(self) -> None:  # noqa: D102 - documented on Component
        self.node.state = NodeState.ON
        self.node.idle_since = self.sim.now
        super().recover()

    # ------------------------------------------------------------- membership
    @property
    def is_assigned(self) -> bool:
        """True once the LC has joined a Group Manager."""
        return self.assigned_gm is not None

    def handle_message(self, message: Message) -> None:
        if message.msg_type is MessageType.GL_HEARTBEAT:
            self._on_gl_heartbeat(message)
        elif message.msg_type is MessageType.GM_HEARTBEAT:
            self._on_gm_heartbeat(message)

    def _on_gl_heartbeat(self, message: Message) -> None:
        self.current_gl = message.payload.get("gl") if message.payload else message.sender
        if self.assigned_gm is None and not self._joining:
            # Small grace period before asking for an assignment: a freshly
            # elected Group Leader needs one heartbeat round to learn which
            # other Group Managers exist, otherwise every LC would be assigned
            # to the leader itself.
            self._joining = True
            self.sim.schedule(0.5 * self.config.lc_heartbeat_interval, self._request_assignment)

    def _request_assignment(self) -> None:
        """Ask the current GL for a Group Manager to join (Section II.D)."""
        if not self.is_running or self.assigned_gm is not None or self.current_gl is None:
            self._joining = False
            return
        self._joining = True
        self.rpc.call(
            self.current_gl,
            "assign_lc",
            kwargs={"lc_name": self.name, "capacity": self.node.capacity.values.tolist()},
            on_reply=self._on_assignment,
            on_error=lambda _err: self._join_failed(),
            on_timeout=self._join_failed,
            timeout=self.config.rpc_timeout,
        )

    def _on_assignment(self, result) -> None:
        gm_name = result.get("gm") if isinstance(result, dict) else None
        if gm_name is None:
            self._join_failed()
            return
        self.rpc.call(
            gm_name,
            "join_lc",
            kwargs={"lc_name": self.name, "node_id": self.node.node_id},
            on_reply=lambda _ack, gm=gm_name: self._joined(gm),
            on_error=lambda _err: self._join_failed(),
            on_timeout=self._join_failed,
            timeout=self.config.rpc_timeout,
        )

    def _joined(self, gm_name: str) -> None:
        self._joining = False
        self.assigned_gm = gm_name
        self._gm_lease = None
        self.multicast.group(gm_heartbeat_group(gm_name)).subscribe(self.name)
        if self._deterministic_network():
            # An assigned LC only consults the Group Leader channel while
            # rejoining, yet it is the GL heartbeat's biggest fan-out cost: at
            # fleet scale thousands of assigned LCs each pay the full delivery
            # chain every interval just to refresh a field nobody reads.
            # Pause the subscription (keeping the fan-out slot) and recover
            # the exact missed value from the channel latch on GM loss.  Only
            # on deterministic networks: with jitter or loss each delivery
            # consumes random draws, so skipping deliveries would shift every
            # subsequent sample in the run.
            self.multicast.group(GL_HEARTBEAT_GROUP).pause(self.name)
        if self._gm_timeout is not None:
            # The old detector is never restarted again: release its entry.
            self.discard_timeout(self._gm_timeout)
        if self.config.coalesce_events:
            # All LC-side GM failure detectors share one deadline array (and
            # one pending simulator event) instead of one Timeout per LC.
            self._gm_timeout = self.add_deadline(
                DeadlineTable.shared(self.sim, "lc-gm-heartbeats"),
                self.config.heartbeat_timeout,
                self._gm_lost,
            )
            if self._deterministic_network() and (
                self.config.heartbeat_timeout
                > self.config.gm_heartbeat_interval + self.network.config.base_latency
            ):
                # The GM heartbeat handler does exactly one thing: restart
                # this detector.  Register the detector as the channel's
                # deadline sink and pause the subscription -- each GM publish
                # then re-arms it (to delivery time + timeout, the very
                # deadline the handler would have set) in one vectorized
                # table write shared with every sibling LC, instead of a
                # message, a delivery and a handler call per LC per interval.
                # Requires timeout > interval + latency so the detector can
                # never expire between a publish and its delivery instant --
                # the one window where restart-at-publish and
                # restart-at-delivery could disagree.
                self.multicast.group(gm_heartbeat_group(gm_name)).pause(
                    self.name, deadline=self._gm_timeout
                )
            if (
                self._deterministic_network()
                and self.config.heartbeat_timeout
                > self.config.lc_heartbeat_interval + self.network.config.base_latency
            ):
                # Symmetric fast path for the reverse direction: the GM
                # published its detector for this LC as a heartbeat lease, so
                # our periodic heartbeat can re-arm it at delivery time
                # instead of sending a message (see ``_send_heartbeat``).
                handle = heartbeat_leases(self.sim).get((gm_name, self.name))
                if handle is not None:
                    self._gm_lease = (self.network.endpoint(gm_name), handle)
        else:
            self._gm_timeout = self.add_timeout(self.config.heartbeat_timeout, self._gm_lost)
        if self._rejoin_span is not None:
            self._rejoin_span.attrs["gm"] = gm_name
            self.tracer.end(self._rejoin_span)
            self._rejoin_span = None
        self.log_event("lc_joined", gm=gm_name)

    def _join_failed(self) -> None:
        self._joining = False

    def _deterministic_network(self) -> bool:
        config = self.network.config
        return (
            self.network.batch_delivery
            and config.jitter == 0
            and config.loss_probability == 0
        )

    def _gm_lost(self) -> None:
        """The assigned GM's heartbeats stopped: rejoin the hierarchy (Section II.E)."""
        self._gm_lease = None
        gl_group = self.multicast.group(GL_HEARTBEAT_GROUP)
        if gl_group.is_paused(self.name):
            # Catch up on the Group Leader heartbeats skipped while paused:
            # the latch yields exactly the (sender, payload) the last
            # delivered heartbeat would have carried, so ``current_gl`` is
            # byte-for-byte what an uninterrupted subscription would hold.
            latched = gl_group.last_delivered(self.sim.now, self.network.config.base_latency)
            if latched is not None:
                sender, payload = latched
                self.current_gl = payload.get("gl") if payload else sender
            gl_group.resume(self.name)
        if self.assigned_gm is not None:
            self.log_event("gm_lost", gm=self.assigned_gm)
            if self.tracer is not None:
                if self._rejoin_span is not None:  # stale: previous rejoin never completed
                    self.tracer.end(self._rejoin_span)
                self._rejoin_span = self.tracer.begin(
                    "lc_rejoin", self.name, root=True, lost_gm=self.assigned_gm
                )
            self.multicast.group(gm_heartbeat_group(self.assigned_gm)).unsubscribe(self.name)
        self.assigned_gm = None
        if self.current_gl is not None and not self._joining:
            self._joining = True
            self.sim.schedule(0.5 * self.config.lc_heartbeat_interval, self._request_assignment)

    def _on_gm_heartbeat(self, message: Message) -> None:
        if self.assigned_gm is not None and message.sender == self.assigned_gm:
            if self._gm_timeout is not None:
                self._gm_timeout.restart()

    # ------------------------------------------------------------- heartbeats
    def _send_heartbeat(self) -> None:
        if self.assigned_gm is None:
            return
        lease = self._gm_lease
        if lease is not None:
            # Deterministic fast path: re-arm the GM's detector for this LC
            # to delivery time + timeout -- the exact deadline its
            # ``_on_lc_heartbeat`` would set on receipt -- and skip the
            # message entirely.  Mirror the transport's drop rules: a
            # disconnected sender's send, or a delivery to a disconnected
            # GM, would never have restarted the detector.
            gm_endpoint, handle = lease
            if self.endpoint.connected and gm_endpoint is not None and gm_endpoint.connected:
                handle.restart_later(self.sim.now + self.network.config.base_latency)
            return
        self.network.send(
            Message(
                msg_type=MessageType.LC_HEARTBEAT,
                sender=self.name,
                recipient=self.assigned_gm,
                payload=self._heartbeat_payload,
            ),
            size_bytes=128,
            sender=self.endpoint,
        )

    # ------------------------------------------------------------- monitoring
    def _monitoring_tick(self) -> None:
        """Sample VMs, terminate the ones whose runtime elapsed, report to the GM."""
        self._monitoring_prepare()
        self._monitoring_emit()

    def _monitoring_prepare(self) -> None:
        """Tick phase 1: reap expired VMs and append fresh usage samples."""
        self._reap_finished_vms()
        self.monitor.refresh(self.sim.now)

    def _monitoring_emit(self) -> None:
        """Tick phase 2: build the report from current samples, send, detect anomalies."""
        report = self.monitor.build_report(self.sim.now)
        if self.assigned_gm is not None:
            self.network.send(
                Message(
                    msg_type=MessageType.LC_MONITORING,
                    sender=self.name,
                    recipient=self.assigned_gm,
                    payload=report,
                ),
                size_bytes=1024,
                sender=self.endpoint,
            )
        self._detect_anomalies(report)

    def _reap_finished_vms(self) -> None:
        """Backstop sweep for expired VMs the departure timer missed.

        The precise per-VM timer scheduled at start covers the common case;
        this sweep catches VMs that migrated onto this node (their timer lives
        on the source LC and no-ops there once the VM has left).
        """
        for vm in self.node.vms:
            if (
                vm.runtime is not None
                and vm.start_time is not None
                and self.sim.now - vm.start_time >= vm.runtime
                and vm.state is VMState.RUNNING
            ):
                self._depart_vm(vm)

    def _depart_vm(self, vm: VirtualMachine) -> None:
        """Release a VM whose lifetime expired: free resources, emit the event.

        Called by the exact-expiry timer set when the VM starts and by the
        monitoring-tick backstop.  No-ops unless the VM is still running here
        (it may have migrated away, been terminated, or been lost to an LC
        failure in the meantime).
        """
        if not self.is_running or not self.node.hosts_vm(vm) or vm.state is not VMState.RUNNING:
            return
        if vm.runtime is None or vm.start_time is None or self.sim.now - vm.start_time < vm.runtime:
            return
        self.node.remove_vm(vm, self.sim.now)
        vm.mark_finished(self.sim.now)
        self.monitor.untrack_vm(vm)
        self.log_event(
            "vm_departed",
            vm=vm.name,
            node_id=self.node.node_id,
            lifetime=vm.runtime,
        )

    def _detect_anomalies(self, report: dict) -> None:
        if self.assigned_gm is None:
            return
        utilization = report["utilization"]
        thresholds = self.config.thresholds
        now = self.sim.now
        if thresholds.is_overloaded(utilization) and now - self._last_overload_report >= self.anomaly_cooldown:
            self._last_overload_report = now
            self.network.send(
                Message(
                    msg_type=MessageType.OVERLOAD_EVENT,
                    sender=self.name,
                    recipient=self.assigned_gm,
                    payload={"node_id": self.node.node_id, "utilization": utilization},
                )
            )
            self.log_event("overload_detected", utilization=utilization)
        elif (
            self.node.vm_count > 0
            and thresholds.is_underloaded(utilization)
            and now - self._last_underload_report >= self.anomaly_cooldown
        ):
            self._last_underload_report = now
            self.network.send(
                Message(
                    msg_type=MessageType.UNDERLOAD_EVENT,
                    sender=self.name,
                    recipient=self.assigned_gm,
                    payload={"node_id": self.node.node_id, "utilization": utilization},
                )
            )
            self.log_event("underload_detected", utilization=utilization)

    # ----------------------------------------------------------- RPC commands
    def _op_start_vm(self, vm: VirtualMachine) -> dict:
        """Enforce a VM start command from the GM."""
        if self.node.state is not NodeState.ON or not self.node.fits(vm):
            return {"accepted": False, "reason": "insufficient capacity"}
        if self.tracer is not None:
            with self.tracer.span("vm_boot", self.name, vm=vm.vm_id):
                return self._start_vm(vm)
        return self._start_vm(vm)

    def _start_vm(self, vm: VirtualMachine) -> dict:
        self.node.place_vm(vm, now=self.sim.now)
        self.monitor.track_vm(vm)
        if vm.runtime is not None:
            # Exact-expiry departure so churn does not quantize to the
            # monitoring interval (remaining = runtime minus time already run,
            # e.g. zero remaining after a failed-then-recovered placement).
            # Departures pool into a shared deadline table: one pending
            # simulator event instead of one heap entry per running VM (a
            # churny fleet otherwise drags thousands of pending departures
            # through every heap operation), and ``release_on_fire`` recycles
            # each entry the moment it fires since nobody holds the handle.
            elapsed = self.sim.now - vm.start_time if vm.start_time is not None else 0.0
            remaining = max(vm.runtime - elapsed, 0.0)
            if remaining > 0:
                DeadlineTable.shared(self.sim, "vm-departures").arm(
                    remaining, self._depart_vm, vm, release_on_fire=True
                )
            else:
                self.sim.schedule(0.0, self._depart_vm, vm)
        self.log_event("vm_started", vm=vm.name)
        return {"accepted": True, "node_id": self.node.node_id}

    def _op_terminate_vm(self, vm_id: int) -> dict:
        """Terminate a hosted VM by id."""
        for vm in self.node.vms:
            if vm.vm_id == vm_id:
                self.node.remove_vm(vm, self.sim.now)
                vm.mark_finished(self.sim.now)
                self.monitor.untrack_vm(vm)
                self.log_event("vm_terminated", vm=vm.name)
                return {"terminated": True}
        return {"terminated": False, "reason": "vm not found"}

    def _op_migrate_vm(self, vm_id: int, destination_node_id: str) -> dict:
        """Live-migrate a hosted VM to another node (GM-initiated)."""
        vm = next((candidate for candidate in self.node.vms if candidate.vm_id == vm_id), None)
        if vm is None:
            return {"started": False, "reason": "vm not found"}
        registry: Dict[str, PhysicalNode] = self.sim.get_service(NODE_REGISTRY_SERVICE)
        destination = registry.get(destination_node_id)
        if destination is None:
            return {"started": False, "reason": "unknown destination"}
        executor: MigrationExecutor = self.sim.get_service(MIGRATION_SERVICE)
        started = executor.migrate(
            vm,
            self.node,
            destination,
            on_complete=lambda migrated: self.log_event(
                "migration_completed", vm=migrated.name, destination=destination_node_id
            ),
            on_failed=lambda failed, reason: self.log_event(
                "migration_failed", vm=failed.name, reason=reason
            ),
        )
        if started:
            self.monitor.untrack_vm(vm)
        return {"started": started}

    def _op_describe(self) -> dict:
        """Diagnostic snapshot used by the CLI's hierarchy visualization."""
        return {
            "name": self.name,
            "node_id": self.node.node_id,
            "state": self.node.state.value,
            "vm_count": self.node.vm_count,
            "utilization": self.node.utilization(),
            "assigned_gm": self.assigned_gm,
        }
