"""The Snooze hierarchy: Entry Points, Group Leader, Group Managers, Local Controllers.

This package implements the paper's first contribution (Section II): a
self-organizing, fault-tolerant, hierarchical VM management framework.

* :class:`~repro.hierarchy.config.HierarchyConfig` -- all administrator knobs
  (heartbeat intervals and timeouts, scheduling policies, energy settings).
* :class:`~repro.hierarchy.local_controller.LocalController` -- controls one
  physical node: monitoring, anomaly detection, command enforcement.
* :class:`~repro.hierarchy.group_manager.GroupManager` -- manages a subset of
  LCs: demand estimation, placement/relocation/reconfiguration scheduling,
  energy management; becomes the Group Leader when elected.
* :class:`~repro.hierarchy.entry_point.EntryPoint` -- the replicated client
  layer that tracks the current Group Leader.
* :class:`~repro.hierarchy.client.SnoozeClient` -- submits VMs through an
  Entry Point and records submission latencies.
* :class:`~repro.hierarchy.system.SnoozeSystem` -- builds a whole deployment
  (simulator, network, coordination, cluster, components), runs workloads and
  injects failures; this is the facade the examples and benchmarks use.
"""

from repro.hierarchy.config import HierarchyConfig
from repro.hierarchy.common import Component, ComponentState
from repro.hierarchy.local_controller import LocalController
from repro.hierarchy.group_manager import GroupManager
from repro.hierarchy.entry_point import EntryPoint
from repro.hierarchy.client import SnoozeClient, SubmissionRecord
from repro.hierarchy.system import SnoozeSystem, SystemSpec

__all__ = [
    "SystemSpec",
    "HierarchyConfig",
    "Component",
    "ComponentState",
    "LocalController",
    "GroupManager",
    "EntryPoint",
    "SnoozeClient",
    "SubmissionRecord",
    "SnoozeSystem",
]
