"""Snooze client: submits VMs through Entry Points and records the outcome.

The client is what the paper's command-line interface builds on: it discovers
the hierarchy through the replicated Entry Points and submits VM requests,
retrying through another Entry Point when one is unavailable.  Every
submission produces a :class:`SubmissionRecord` with the timing information
the scalability experiment (E3) reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.cluster.vm import VirtualMachine, VMState
from repro.hierarchy.config import HierarchyConfig
from repro.metrics.recorder import EventLog
from repro.network.rpc import RpcChannel
from repro.network.transport import Network
from repro.obs import OBSERVABILITY_SERVICE
from repro.simulation.engine import Simulator


@dataclass
class SubmissionRecord:
    """Outcome of one VM submission as observed by the client."""

    vm: VirtualMachine
    submitted_at: float
    completed_at: Optional[float] = None
    placed: bool = False
    gm: Optional[str] = None
    lc: Optional[str] = None
    node_id: Optional[str] = None
    reason: Optional[str] = None

    @property
    def latency(self) -> Optional[float]:
        """Submission latency (client-observed), or None if still pending."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def pending(self) -> bool:
        """True while the submission outcome has not come back yet."""
        return self.completed_at is None


class SnoozeClient:
    """Client-side API: submit VMs and collect submission statistics."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        network: Network,
        entry_points: Sequence[str],
        config: Optional[HierarchyConfig] = None,
        event_log: Optional[EventLog] = None,
    ) -> None:
        if not entry_points:
            raise ValueError("client needs at least one entry point")
        self.name = name
        self.sim = sim
        self.network = network
        self.config = config or HierarchyConfig()
        self.entry_points = list(entry_points)
        self.event_log = event_log if event_log is not None else EventLog()
        self.records: List[SubmissionRecord] = []
        self._next_entry_point = 0
        network.register(name, self._on_message)
        self.rpc = RpcChannel(network, name)
        # The client is not a Component, so it discovers the observability
        # plane itself; "vm_submit" root spans track each in-flight submission.
        obs = sim.get_service(OBSERVABILITY_SERVICE) if sim.has_service(OBSERVABILITY_SERVICE) else None
        self.tracer = obs.tracer if obs is not None else None
        self._submit_spans: dict = {}

    def _on_message(self, message) -> None:
        self.rpc.handle_message(message)

    # ------------------------------------------------------------------ submit
    def submit(
        self,
        vm: VirtualMachine,
        on_complete: Optional[Callable[[SubmissionRecord], None]] = None,
    ) -> SubmissionRecord:
        """Submit one VM through the next Entry Point (round-robin over replicas)."""
        vm.mark_submitted(self.sim.now)
        record = SubmissionRecord(vm=vm, submitted_at=self.sim.now)
        self.records.append(record)
        if self.tracer is not None:
            # A fresh root trace per submission: every downstream span of the
            # dispatch -> placement -> boot chain hangs off this one.
            self._submit_spans[id(record)] = self.tracer.begin(
                "vm_submit", self.name, root=True, vm=vm.vm_id
            )
        self._try_entry_point(vm, record, attempts_left=len(self.entry_points), on_complete=on_complete)
        return record

    def submit_batch(
        self,
        vms: Sequence[VirtualMachine],
        on_complete: Optional[Callable[[SubmissionRecord], None]] = None,
    ) -> List[SubmissionRecord]:
        """Submit several VMs at once (the CCGrid'12 submission-burst workload)."""
        return [self.submit(vm, on_complete=on_complete) for vm in vms]

    def _try_entry_point(
        self,
        vm: VirtualMachine,
        record: SubmissionRecord,
        attempts_left: int,
        on_complete: Optional[Callable[[SubmissionRecord], None]],
        tried: Optional[set] = None,
    ) -> None:
        tried = tried if tried is not None else set()
        if attempts_left <= 0:
            self._finish(record, {"placed": False, "reason": "all entry points unavailable"}, on_complete)
            return
        # Prefer an Entry Point this submission has not timed out on yet, so a
        # crashed replica is not retried while a healthy one exists.
        untried = [ep for ep in self.entry_points if ep not in tried]
        pool = untried or self.entry_points
        entry_point = pool[self._next_entry_point % len(pool)]
        self._next_entry_point += 1
        span = self._submit_spans.get(id(record))
        self.rpc.call(
            entry_point,
            "submit_vm",
            kwargs={"vm": vm},
            trace_ctx=span.ctx if span is not None else None,
            on_reply=lambda result: self._finish(record, result, on_complete),
            on_error=lambda error: self._finish(record, {"placed": False, "reason": error}, on_complete),
            on_timeout=lambda: self._try_entry_point(
                vm, record, attempts_left - 1, on_complete, tried | {entry_point}
            ),
            timeout=self.config.placement_timeout + 4 * self.config.rpc_timeout,
        )

    def _finish(
        self,
        record: SubmissionRecord,
        result,
        on_complete: Optional[Callable[[SubmissionRecord], None]],
    ) -> None:
        record.completed_at = self.sim.now
        span = self._submit_spans.pop(id(record), None)
        if span is not None:
            span.attrs["placed"] = bool(result.get("placed")) if isinstance(result, dict) else False
            self.tracer.end(span)
        if isinstance(result, dict):
            record.placed = bool(result.get("placed"))
            record.gm = result.get("gm")
            record.lc = result.get("lc")
            record.node_id = result.get("node_id")
            record.reason = result.get("reason")
        self.event_log.record(
            self.sim.now,
            "vm_submission_completed",
            vm=record.vm.name,
            placed=record.placed,
            latency=record.latency,
        )
        if on_complete is not None:
            on_complete(record)

    # --------------------------------------------------------------- statistics
    def placed_count(self) -> int:
        """Number of submissions that ended with a successful placement."""
        return sum(1 for record in self.records if record.placed)

    def departed_count(self) -> int:
        """Placed VMs whose lifetime elapsed and whose resources were released.

        The Local Controller hosting a VM releases it when its runtime expires
        (emitting a ``vm_departed`` event); the client observes the departure
        through the shared VM object, exactly like a user polling VM status.
        """
        return sum(
            1 for record in self.records if record.placed and record.vm.state is VMState.FINISHED
        )

    def failed_vm_count(self) -> int:
        """Placed VMs lost to a Local Controller failure (paper Section II.E)."""
        return sum(
            1 for record in self.records if record.placed and record.vm.state is VMState.FAILED
        )

    def active_vm_count(self) -> int:
        """Placed VMs still occupying resources (running or migrating)."""
        return sum(1 for record in self.records if record.placed and record.vm.is_active)

    def rejected_count(self) -> int:
        """Number of completed submissions that were rejected."""
        return sum(1 for record in self.records if not record.placed and not record.pending)

    def pending_count(self) -> int:
        """Number of submissions still in flight."""
        return sum(1 for record in self.records if record.pending)

    def latencies(self) -> List[float]:
        """Latencies of all completed submissions."""
        return [record.latency for record in self.records if record.latency is not None]

    def mean_latency(self) -> float:
        """Mean submission latency (0 if nothing completed yet)."""
        values = self.latencies()
        return float(sum(values) / len(values)) if values else 0.0
