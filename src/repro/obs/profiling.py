"""Event-loop profiling: wall-clock attribution per handler and component.

:class:`EventLoopProfiler` is the sink behind the opt-in hooks in
``Simulator.run``/``step`` and ``CoalescedTicker``: the kernel times each
handler invocation with ``time.perf_counter`` and calls :meth:`record`.  The
profiler aggregates per handler key (``ClassName.method`` for bound methods)
and optionally feeds a ``handler_wall_seconds`` histogram in a
:class:`~repro.obs.metrics.MetricsRegistry`.

Wall-clock values never reach ``canonical_json()`` -- the deterministic part
of a profile is only *which* handlers ran and how often, which is exactly the
event structure the golden fixtures already pin.
"""

from __future__ import annotations

from typing import Dict, List, Optional


def handler_key(callback) -> str:
    """A stable, address-free name for an event callback."""
    if callback is None:
        return "<none>"
    bound_self = getattr(callback, "__self__", None)
    if bound_self is not None:
        return f"{type(bound_self).__name__}.{getattr(callback, '__name__', '<call>')}"
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        # functools.partial and other callables without a qualname: fall back
        # to the wrapped function, then the callable's type (never repr(),
        # which embeds a memory address).
        wrapped = getattr(callback, "func", None)
        qualname = getattr(wrapped, "__qualname__", None) or type(callback).__name__
    return qualname


class EventLoopProfiler:
    """Aggregates handler wall-clock samples recorded by the kernel."""

    def __init__(self, registry=None) -> None:
        # key -> [calls, total_seconds, max_seconds]
        self._stats: Dict[str, List[float]] = {}
        self._histograms = None
        self._handles: Dict[str, object] = {}
        if registry is not None:
            self._histograms = registry.histogram(
                "handler_wall_seconds",
                help="Wall-clock time spent inside each event handler.",
            )

    def record(self, callback, seconds: float) -> None:
        """Account one handler invocation (called from the event loop)."""
        key = handler_key(callback)
        stat = self._stats.get(key)
        if stat is None:
            stat = self._stats[key] = [0, 0.0, 0.0]
        stat[0] += 1
        stat[1] += seconds
        if seconds > stat[2]:
            stat[2] = seconds
        if self._histograms is not None:
            handle = self._handles.get(key)
            if handle is None:
                handle = self._handles[key] = self._histograms.labels(handler=key)
            handle.observe(seconds)

    @property
    def total_seconds(self) -> float:
        """Wall-clock seconds accounted to handlers so far."""
        return sum(stat[1] for stat in self._stats.values())

    @property
    def total_calls(self) -> int:
        """Handler invocations recorded so far."""
        return sum(int(stat[0]) for stat in self._stats.values())

    def summary(self, top: Optional[int] = None) -> dict:
        """Per-handler and per-component breakdown, largest share first.

        Everything in here is wall-clock derived; callers must keep it out of
        determinism comparisons.
        """
        total = self.total_seconds
        ranked = sorted(self._stats.items(), key=lambda item: (-item[1][1], item[0]))
        if top is not None:
            ranked = ranked[:top]
        handlers = {
            key: {
                "calls": int(stat[0]),
                "seconds": round(stat[1], 6),
                "max_seconds": round(stat[2], 6),
                "share": round(stat[1] / total, 4) if total > 0 else 0.0,
            }
            for key, stat in ranked
        }
        components: Dict[str, List[float]] = {}
        for key, stat in self._stats.items():
            component = key.split(".", 1)[0]
            agg = components.get(component)
            if agg is None:
                agg = components[component] = [0, 0.0]
            agg[0] += stat[0]
            agg[1] += stat[1]
        component_summary = {
            component: {
                "calls": int(agg[0]),
                "seconds": round(agg[1], 6),
                "share": round(agg[1] / total, 4) if total > 0 else 0.0,
            }
            for component, agg in sorted(
                components.items(), key=lambda item: (-item[1][1], item[0])
            )
        }
        return {
            "total_seconds": round(total, 6),
            "handler_calls": self.total_calls,
            "handlers": handlers,
            "components": component_summary,
        }
