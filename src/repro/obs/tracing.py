"""Span-based causal tracing of control-plane flows.

A :class:`Tracer` records :class:`Span` objects stamped with *simulated* time
(the clock is injected, normally ``lambda: sim.now``), so traces are fully
deterministic: the same seed produces the same spans with the same ids.  A
span belongs to a trace and may have a parent span; the ``(trace_id,
span_id)`` pair is the *trace context* that components attach to in-flight
:class:`~repro.network.message.Message` objects, letting causality survive
network hops, RPC retries and batched deliveries.

The export format is Chrome trace-event JSON (:meth:`Tracer.chrome_trace`):
complete ``"X"`` events plus ``thread_name`` metadata, one track per
component, which opens directly in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

#: A trace context: ``(trace_id, span_id)`` of the active span.
TraceContext = Tuple[int, int]


class Span:
    """One timed operation on a component, part of a causal trace."""

    __slots__ = ("name", "component", "trace_id", "span_id", "parent_id", "start", "end", "attrs")

    def __init__(
        self,
        name: str,
        component: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.component = component
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def ctx(self) -> TraceContext:
        """The context to propagate to causally-dependent work."""
        return (self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        """Simulated duration (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start


class Tracer:
    """Deterministic span recorder with an explicit active context.

    ``current`` holds the context of whatever causal chain is executing right
    now; the network activates it around message delivery so handlers inherit
    the sender's context without any plumbing of their own.
    """

    def __init__(self, clock: Callable[[], float], max_spans: int = 250_000) -> None:
        self._clock = clock
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        #: The active trace context (None outside any traced chain).
        self.current: Optional[TraceContext] = None
        self._next_trace = 1
        self._next_span = 1

    # ------------------------------------------------------------ recording
    def begin(
        self,
        name: str,
        component: str,
        parent: Optional[TraceContext] = None,
        root: bool = False,
        **attrs: object,
    ) -> Span:
        """Open a span; the parent defaults to the active context.

        ``root=True`` forces a fresh trace even when a context is active
        (used for top-level operations like a client submission).
        """
        parent_ctx = None if root else (parent if parent is not None else self.current)
        span_id = self._next_span
        self._next_span += 1
        if parent_ctx is None:
            trace_id = self._next_trace
            self._next_trace += 1
            parent_id = None
        else:
            trace_id, parent_id = parent_ctx
        span = Span(name, component, trace_id, span_id, parent_id, self._clock(), dict(attrs))
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    def end(self, span: Span) -> None:
        """Close a span at the current simulated time (idempotent)."""
        if span.end is None:
            span.end = self._clock()

    def end_on(self, span: Span, event) -> None:
        """Close ``span`` when a simulation :class:`Event` completes."""
        event.add_listener(lambda _event, _value: self.end(span))

    @contextmanager
    def span(self, name: str, component: str, **attrs: object):
        """Open a span, activate its context for the body, close on exit."""
        span = self.begin(name, component, **attrs)
        previous = self.activate(span.ctx)
        try:
            yield span
        finally:
            self.restore(previous)
            self.end(span)

    def instant(self, name: str, component: str, **attrs: object) -> Span:
        """A zero-duration marker span (election won, failure detected...)."""
        span = self.begin(name, component, **attrs)
        span.end = span.start
        return span

    # -------------------------------------------------------------- context
    def activate(self, ctx: Optional[TraceContext]) -> Optional[TraceContext]:
        """Make ``ctx`` the active context; returns the previous one."""
        previous = self.current
        self.current = ctx
        return previous

    def restore(self, previous: Optional[TraceContext]) -> None:
        """Restore a context returned by :meth:`activate`."""
        self.current = previous

    # -------------------------------------------------------------- exports
    def summary(self) -> dict:
        """Deterministic span accounting (counts only, no wall clock)."""
        by_name: Dict[str, int] = {}
        unfinished = 0
        for span in self.spans:
            by_name[span.name] = by_name.get(span.name, 0) + 1
            if span.end is None:
                unfinished += 1
        return {
            "spans": len(self.spans),
            "dropped": self.dropped,
            "unfinished": unfinished,
            "by_name": {name: by_name[name] for name in sorted(by_name)},
        }

    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON: one process, one thread per component.

        Simulated seconds map to trace microseconds, so a 600 s scenario
        renders as a 600 "µs-unit" timeline -- Perfetto only needs the unit to
        be consistent.  Unfinished spans export with zero duration and an
        ``unfinished`` marker.
        """
        components = sorted({span.component for span in self.spans})
        tids = {component: index + 1 for index, component in enumerate(components)}
        events: List[dict] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": 1,
                "tid": 0,
                "args": {"name": "repro-sim"},
            }
        ]
        for component in components:
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tids[component],
                    "args": {"name": component},
                }
            )
        spans = sorted(self.spans, key=lambda span: (span.start, span.span_id))
        for span in spans:
            args: Dict[str, object] = {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
            }
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            if span.end is None:
                args["unfinished"] = True
            args.update(span.attrs)
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": "sim",
                    "pid": 1,
                    "tid": tids[span.component],
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}
