"""The fleet observability plane: config gating, wiring and exports.

:class:`ObservabilityPlane` bundles the three pillars -- metrics registry,
tracer and event-loop profiler -- behind one simulator service, so every
component (and the network transport) can discover whichever pillars are
enabled with a single service lookup.  :meth:`ObservabilityPlane.build`
returns ``None`` when every pillar is off: the disabled configuration costs
nothing by construction because no hook holds a plane to call into.

The result-facing split between deterministic and wall-clock data lives here
too: :meth:`result_section` emits both, :data:`OBS_WALLCLOCK_KEYS` names the
wall-clock-derived keys, and :func:`deterministic_observability` strips them
for golden fixtures and sweep reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import EventLoopProfiler
from repro.obs.tracing import Tracer

#: Simulator service name the plane registers under.
OBSERVABILITY_SERVICE = "observability"

#: Keys of a result ``observability`` section whose values derive from wall
#: clock.  Everything else in the section is a pure function of the seed.
OBS_WALLCLOCK_KEYS = frozenset({"profiling", "histogram_seconds"})


def deterministic_observability(section: Dict[str, object]) -> Dict[str, object]:
    """The wall-clock-free projection of a result observability section."""
    return {key: value for key, value in section.items() if key not in OBS_WALLCLOCK_KEYS}


@dataclass
class ObservabilityConfig:
    """Which observability pillars a deployment enables.

    Metrics default on (counter mirroring is collector-based and free on the
    hot path); tracing and profiling default off (they add per-span /
    per-event work).
    """

    metrics: bool = True
    tracing: bool = False
    profiling: bool = False

    @property
    def enabled(self) -> bool:
        """True when any pillar is on."""
        return self.metrics or self.tracing or self.profiling

    def to_dict(self) -> Dict[str, bool]:
        return {"metrics": self.metrics, "tracing": self.tracing, "profiling": self.profiling}


class ObservabilityPlane:
    """The enabled pillars of one deployment, registered as a service."""

    SERVICE_NAME = OBSERVABILITY_SERVICE

    def __init__(self, sim, config: Optional[ObservabilityConfig] = None) -> None:
        self.sim = sim
        self.config = config or ObservabilityConfig()
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if self.config.metrics else None
        )
        self.tracer: Optional[Tracer] = (
            Tracer(clock=lambda: sim.now) if self.config.tracing else None
        )
        self.profiler: Optional[EventLoopProfiler] = (
            EventLoopProfiler(registry=self.registry) if self.config.profiling else None
        )
        self._decision_histogram = None
        self._decision_handles: Dict[tuple, object] = {}

    # --------------------------------------------------------------- wiring
    @classmethod
    def build(cls, sim, config: Optional[ObservabilityConfig]) -> Optional["ObservabilityPlane"]:
        """Create and register a plane, or return None when all pillars are off."""
        if config is None or not config.enabled:
            return None
        plane = cls(sim, config)
        sim.register_service(cls.SERVICE_NAME, plane)
        return plane

    @classmethod
    def of(cls, sim) -> Optional["ObservabilityPlane"]:
        """The plane registered on ``sim``, or None."""
        if sim.has_service(cls.SERVICE_NAME):
            return sim.get_service(cls.SERVICE_NAME)
        return None

    def watch_simulator(self) -> None:
        """Mirror the kernel's processed-event count at collection time."""
        if self.registry is None:
            return
        handle = self.registry.counter(
            "simulator_events_total", help="Events processed by the simulation kernel."
        ).labels()
        sim = self.sim
        self.registry.add_collector(lambda: handle.set(sim.processed_events))

    def watch_network(self, network) -> None:
        """Mirror the transport counters lazily (no per-message metric cost)."""
        if self.registry is None:
            return
        registry = self.registry
        sent = registry.counter(
            "network_messages_sent_total", help="Messages handed to the transport."
        ).labels()
        delivered = registry.counter(
            "network_messages_delivered_total", help="Messages delivered to an endpoint."
        ).labels()
        dropped = registry.counter(
            "network_messages_dropped_total",
            help="Messages dropped by loss, disconnects or missing endpoints.",
        ).labels()
        bytes_sent = registry.counter(
            "network_bytes_sent_total", help="Payload bytes handed to the transport."
        ).labels()
        endpoints = registry.gauge(
            "network_endpoints", help="Registered network endpoints."
        ).labels()

        def mirror() -> None:
            stats = network.stats()
            sent.set(stats["messages_sent"])
            delivered.set(stats["messages_delivered"])
            dropped.set(stats["messages_dropped"])
            bytes_sent.set(stats["bytes_sent"])
            endpoints.set(stats["endpoints"])

        registry.add_collector(mirror)

    def watch_traffic(self, plane) -> None:
        """Mirror the traffic plane's request totals and SLA quantiles lazily.

        The plane accumulates analytically (fractional request mass), so the
        export uses counters/gauges rather than per-request histogram
        observations -- there are no per-request events to observe.
        """
        if self.registry is None:
            return
        registry = self.registry
        offered = registry.counter(
            "traffic_requests_offered_total", help="Requests offered to all services."
        ).labels()
        served = registry.counter(
            "traffic_requests_served_total", help="Requests served within capacity."
        ).labels()
        dropped = registry.counter(
            "traffic_requests_dropped_total",
            help="Requests dropped by admission control (offered beyond capacity).",
        ).labels()
        p50 = registry.gauge(
            "traffic_request_latency_p50_seconds",
            help="Fleet p50 request latency over all served requests.",
        ).labels()
        p99 = registry.gauge(
            "traffic_request_latency_p99_seconds",
            help="Fleet p99 request latency over all served requests.",
        ).labels()
        replica_gauge = registry.gauge(
            "traffic_service_replicas", help="Live replicas per service."
        )

        def mirror() -> None:
            totals = plane.totals()
            offered.set(totals["offered"])
            served.set(totals["served"])
            dropped.set(totals["dropped"])
            p50.set(plane.fleet_quantile(0.50))
            p99.set(plane.fleet_quantile(0.99))
            for service in plane.services:
                replica_gauge.labels(service=service.spec.name).set(
                    service.live_replicas()
                )

        registry.add_collector(mirror)

    # ------------------------------------------------------ decision timing
    def observe_decision(self, kind: str, component: str, method: str, seconds: float) -> None:
        """Record one policy decision's wall-clock latency."""
        if self.registry is None:
            return
        if self._decision_histogram is None:
            self._decision_histogram = self.registry.histogram(
                "policy_decision_seconds",
                help="Wall-clock latency of policy decision calls.",
            )
        key = (kind, component)
        handle = self._decision_handles.get(key)
        if handle is None:
            handle = self._decision_handles[key] = self._decision_histogram.labels(
                kind=kind, component=component
            )
        handle.observe(seconds)

    def decision_observer(self, kind: str, component: str):
        """An ``observe(method, seconds)`` callback bound to one policy slot."""

        def observe(method: str, seconds: float) -> None:
            self.observe_decision(kind, component, method, seconds)

        return observe

    # -------------------------------------------------------------- exports
    def metrics_text(self) -> str:
        """Prometheus text exposition ('' when metrics are disabled)."""
        return self.registry.to_text() if self.registry is not None else ""

    def metrics_dict(self) -> dict:
        """Canonical metrics dump (empty families when metrics are disabled)."""
        if self.registry is None:
            return {"counters": {}, "gauges": {}, "histograms": {}}
        return self.registry.to_dict()

    def chrome_trace(self) -> dict:
        """Chrome trace-event JSON (empty trace when tracing is disabled)."""
        if self.tracer is None:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        return self.tracer.chrome_trace()

    def result_section(self) -> dict:
        """The ``observability`` section of a ScenarioResult.

        Counters, histogram observation counts and the trace summary are
        deterministic (they count simulated behaviour); the keys listed in
        :data:`OBS_WALLCLOCK_KEYS` carry wall-clock values and are stripped by
        :func:`deterministic_observability` wherever byte-identity matters.
        """
        section: Dict[str, object] = {"enabled": self.config.to_dict()}
        if self.registry is not None:
            dump = self.registry.to_dict()
            section["counters"] = dump["counters"]
            section["gauges"] = dump["gauges"]
            section["histogram_counts"] = {
                name: {labels: series["count"] for labels, series in family.items()}
                for name, family in dump["histograms"].items()
            }
            section["histogram_seconds"] = {
                name: {labels: round(series["sum"], 6) for labels, series in family.items()}
                for name, family in dump["histograms"].items()
            }
        if self.tracer is not None:
            section["tracing"] = self.tracer.summary()
        if self.profiler is not None:
            section["profiling"] = self.profiler.summary(top=20)
        return section
