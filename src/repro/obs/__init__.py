"""repro.obs -- the fleet observability plane.

Three config-gated pillars behind one simulator service:

* **metrics** (:mod:`repro.obs.metrics`): array-backed counters / gauges /
  histograms with Prometheus text exposition and canonical JSON dumps;
* **tracing** (:mod:`repro.obs.tracing`): deterministic causal spans over
  simulated time, propagated through ``Message.trace_ctx`` and exported as
  Chrome trace-event JSON (opens in Perfetto);
* **profiling** (:mod:`repro.obs.profiling`): wall-clock attribution of event
  handlers, fed by opt-in hooks in the simulation kernel.

Enabling any pillar never changes simulated behaviour: golden fixtures stay
byte-identical, and wall-clock values only appear in exports, never in
``canonical_json()``.
"""

from repro.obs.metrics import (
    CounterFamily,
    DEFAULT_SECONDS_BUCKETS,
    GaugeFamily,
    HistogramFamily,
    MetricsRegistry,
)
from repro.obs.plane import (
    OBS_WALLCLOCK_KEYS,
    OBSERVABILITY_SERVICE,
    ObservabilityConfig,
    ObservabilityPlane,
    deterministic_observability,
)
from repro.obs.profiling import EventLoopProfiler, handler_key
from repro.obs.tracing import Span, TraceContext, Tracer

__all__ = [
    "CounterFamily",
    "DEFAULT_SECONDS_BUCKETS",
    "EventLoopProfiler",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
    "OBS_WALLCLOCK_KEYS",
    "OBSERVABILITY_SERVICE",
    "ObservabilityConfig",
    "ObservabilityPlane",
    "Span",
    "TraceContext",
    "Tracer",
    "deterministic_observability",
    "handler_key",
]
