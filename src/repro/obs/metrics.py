"""Array-backed metrics: counters, gauges and histograms without object churn.

The registry follows the PR-4 TelemetryPlane storage discipline: every metric
family keeps its values in preallocated numpy buffers keyed by label-set
slots, so the steady-state cost of an increment is one array write through a
cached handle -- no per-increment allocation, no per-sample objects.

Two consumption formats are supported:

* :meth:`MetricsRegistry.to_text` -- Prometheus text exposition (``# HELP`` /
  ``# TYPE`` headers, ``_bucket{le=...}`` / ``_sum`` / ``_count`` histogram
  series) for scraping-style tooling;
* :meth:`MetricsRegistry.to_dict` -- canonical plain-data dumps (sorted keys)
  for JSON reports and tests.

Hot-path counters that already exist elsewhere (the transport's message
counters, the simulator's processed-event count) are mirrored through
*collectors*: callables registered with :meth:`MetricsRegistry.add_collector`
that copy the source values into metric slots at exposition time, so the
per-message/per-event fast paths stay untouched.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Tuple

import numpy as np

#: Initial slot capacity of a family's value arrays (grown geometrically).
_INITIAL_SLOTS = 64

#: Default histogram bucket upper bounds (seconds): spans microsecond-scale
#: handler timings up to second-scale consolidation runs.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1.0,
)


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    """Canonical slot key of a label set (sorted, stringified)."""
    return tuple(sorted((str(name), str(value)) for name, value in labels.items()))


def label_string(key: Tuple[Tuple[str, str], ...]) -> str:
    """Render a slot key as Prometheus-style ``name="value"`` pairs."""
    return ",".join(f'{name}="{value}"' for name, value in key)


def _format_value(value: float) -> str:
    """Exposition-friendly number rendering (integers without a trailing .0)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class CounterHandle:
    """A cached (family, slot) pair: increments are one array write."""

    __slots__ = ("family", "slot")

    def __init__(self, family: "_ValueFamily", slot: int) -> None:
        self.family = family
        self.slot = slot

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (counters are monotonic by convention)."""
        self.family._values[self.slot] += amount

    def set(self, value: float) -> None:
        """Overwrite the value (used by collectors mirroring external counters)."""
        self.family._values[self.slot] = value

    @property
    def value(self) -> float:
        """Current value."""
        return float(self.family._values[self.slot])


#: Gauges share the handle implementation; only the family kind differs.
GaugeHandle = CounterHandle


class HistogramHandle:
    """A cached histogram slot: observations are a bisect plus array writes."""

    __slots__ = ("family", "slot")

    def __init__(self, family: "HistogramFamily", slot: int) -> None:
        self.family = family
        self.slot = slot

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        family = self.family
        family._counts[self.slot, bisect_left(family.bounds, value)] += 1
        family._sums[self.slot] += value
        family._totals[self.slot] += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        return int(self.family._totals[self.slot])

    @property
    def sum(self) -> float:
        """Sum of observed values."""
        return float(self.family._sums[self.slot])

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, last entry is the +Inf bucket."""
        return self.family._counts[self.slot].tolist()


class _FamilyBase:
    """Shared slot management of all metric families."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._slots: Dict[Tuple[Tuple[str, str], ...], int] = {}
        self._handles: Dict[Tuple[Tuple[str, str], ...], object] = {}

    def labels(self, **labels: object):
        """The handle for one label set (``labels()`` is the unlabeled series)."""
        key = _label_key(labels)
        handle = self._handles.get(key)
        if handle is None:
            slot = self._claim(key)
            handle = self._make_handle(slot)
            self._handles[key] = handle
        return handle

    def _claim(self, key: Tuple[Tuple[str, str], ...]) -> int:
        slot = self._slots.get(key)
        if slot is None:
            slot = len(self._slots)
            if slot >= self._capacity():
                self._grow()
            self._slots[key] = slot
        return slot

    def series(self) -> List[Tuple[Tuple[Tuple[str, str], ...], object]]:
        """(label key, handle) pairs in sorted label order."""
        return [(key, self.labels(**dict(key))) for key in sorted(self._slots)]

    # Subclass storage hooks -------------------------------------------------
    def _capacity(self) -> int:
        raise NotImplementedError

    def _grow(self) -> None:
        raise NotImplementedError

    def _make_handle(self, slot: int):
        raise NotImplementedError


class _ValueFamily(_FamilyBase):
    """A family holding one float per label set (counters and gauges)."""

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values = np.zeros(_INITIAL_SLOTS, dtype=float)

    def _capacity(self) -> int:
        return len(self._values)

    def _grow(self) -> None:
        fresh = np.zeros(2 * len(self._values), dtype=float)
        fresh[: len(self._values)] = self._values
        self._values = fresh

    def _make_handle(self, slot: int) -> CounterHandle:
        return CounterHandle(self, slot)


class CounterFamily(_ValueFamily):
    """A monotonic counter family."""

    kind = "counter"


class GaugeFamily(_ValueFamily):
    """A gauge family (values may go up and down)."""

    kind = "gauge"


class HistogramFamily(_FamilyBase):
    """A histogram family with fixed bucket bounds shared by every label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a non-empty sorted sequence")
        #: Finite bucket upper bounds; observations beyond the last bound land
        #: in an implicit +Inf bucket.
        self.bounds: Tuple[float, ...] = tuple(float(bound) for bound in buckets)
        self._counts = np.zeros((_INITIAL_SLOTS, len(self.bounds) + 1), dtype=np.int64)
        self._sums = np.zeros(_INITIAL_SLOTS, dtype=float)
        self._totals = np.zeros(_INITIAL_SLOTS, dtype=np.int64)

    def _capacity(self) -> int:
        return len(self._sums)

    def _grow(self) -> None:
        old = len(self._sums)
        counts = np.zeros((2 * old, self._counts.shape[1]), dtype=np.int64)
        counts[:old] = self._counts
        self._counts = counts
        for attr in ("_sums", "_totals"):
            current = getattr(self, attr)
            fresh = np.zeros(2 * old, dtype=current.dtype)
            fresh[:old] = current
            setattr(self, attr, fresh)

    def _make_handle(self, slot: int) -> HistogramHandle:
        return HistogramHandle(self, slot)


class MetricsRegistry:
    """One namespace of metric families plus lazy collectors."""

    #: Prefix applied to every family name in the text exposition.
    NAMESPACE = "repro"

    def __init__(self) -> None:
        self._families: Dict[str, _FamilyBase] = {}
        self._collectors: List[Callable[[], None]] = []

    # ------------------------------------------------------------- families
    def counter(self, name: str, help: str = "") -> CounterFamily:
        """Get or create the counter family ``name``."""
        return self._family(name, CounterFamily, help)

    def gauge(self, name: str, help: str = "") -> GaugeFamily:
        """Get or create the gauge family ``name``."""
        return self._family(name, GaugeFamily, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> HistogramFamily:
        """Get or create the histogram family ``name``."""
        family = self._families.get(name)
        if family is None:
            family = HistogramFamily(name, help, buckets=buckets)
            self._families[name] = family
        elif not isinstance(family, HistogramFamily):
            raise ValueError(f"metric {name!r} already registered as {family.kind}")
        elif tuple(buckets) != family.bounds:
            raise ValueError(f"histogram {name!r} already registered with other buckets")
        return family

    def _family(self, name: str, cls, help: str):
        family = self._families.get(name)
        if family is None:
            family = cls(name, help)
            self._families[name] = family
        elif type(family) is not cls:
            raise ValueError(f"metric {name!r} already registered as {family.kind}")
        return family

    def families(self) -> List[_FamilyBase]:
        """All families in sorted-name order."""
        return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------ collectors
    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a callable run before every exposition/dump.

        Collectors mirror counters maintained by hot paths elsewhere (the
        transport, the simulator) into metric slots, keeping those paths free
        of per-event metric writes.
        """
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every registered collector (idempotent between updates)."""
        for collector in self._collectors:
            collector()

    # ----------------------------------------------------------- exposition
    def to_text(self) -> str:
        """Prometheus text exposition of every family (collectors included)."""
        self.collect()
        lines: List[str] = []
        for family in self.families():
            full = f"{self.NAMESPACE}_{family.name}"
            if family.help:
                lines.append(f"# HELP {full} {family.help}")
            lines.append(f"# TYPE {full} {family.kind}")
            if isinstance(family, HistogramFamily):
                for key, handle in family.series():
                    labels = label_string(key)
                    prefix = f"{labels}," if labels else ""
                    cumulative = 0
                    for bound, count in zip(family.bounds, handle.bucket_counts()):
                        cumulative += count
                        lines.append(
                            f'{full}_bucket{{{prefix}le="{_format_value(bound)}"}} {cumulative}'
                        )
                    lines.append(f'{full}_bucket{{{prefix}le="+Inf"}} {handle.count}')
                    suffix = f"{{{labels}}}" if labels else ""
                    lines.append(f"{full}_sum{suffix} {_format_value(handle.sum)}")
                    lines.append(f"{full}_count{suffix} {handle.count}")
            else:
                for key, handle in family.series():
                    labels = label_string(key)
                    suffix = f"{{{labels}}}" if labels else ""
                    lines.append(f"{full}{suffix} {_format_value(handle.value)}")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """Canonical plain-data dump: family -> label string -> value(s)."""
        self.collect()
        counters: Dict[str, Dict[str, float]] = {}
        gauges: Dict[str, Dict[str, float]] = {}
        histograms: Dict[str, Dict[str, dict]] = {}
        for family in self.families():
            if isinstance(family, HistogramFamily):
                histograms[family.name] = {
                    label_string(key): {
                        "count": handle.count,
                        "sum": handle.sum,
                        "buckets": handle.bucket_counts(),
                        "bounds": list(family.bounds),
                    }
                    for key, handle in family.series()
                }
            else:
                target = counters if family.kind == "counter" else gauges
                target[family.name] = {
                    label_string(key): handle.value for key, handle in family.series()
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
