"""repro -- reproduction of Snooze: autonomous, energy-aware cloud management.

This library reproduces Feller & Morin, "Autonomous and Energy-Aware
Management of Large-Scale Cloud Infrastructures" (IPDPS 2012 PhD Forum):

* the **Snooze** self-organizing, hierarchical, fault-tolerant VM management
  framework (:mod:`repro.hierarchy` and its substrates), and
* the **ACO-based VM consolidation** algorithm with its FFD and optimal
  baselines (:mod:`repro.core`).

Quick start::

    import numpy as np
    from repro.core import ACOConsolidation, FirstFitDecreasing
    from repro.workloads import consolidation_instance

    demands, capacities = consolidation_instance(50, np.random.default_rng(0))
    aco = ACOConsolidation().solve(demands, capacities)
    ffd = FirstFitDecreasing().solve(demands, capacities)
    print(aco.hosts_used, "<=", ffd.hosts_used)

See README.md for the architecture overview, DESIGN.md for the system
inventory and EXPERIMENTS.md for the paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "simulation",
    "cluster",
    "workloads",
    "network",
    "coordination",
    "core",
    "monitoring",
    "scheduling",
    "energy",
    "migration",
    "hierarchy",
    "policies",
    "scenarios",
    "sweeps",
    "metrics",
    "cli",
]
