"""Time-series recording and event logging inside simulations."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.simulation.engine import Simulator
from repro.simulation.timers import PeriodicTimer


@dataclass(frozen=True)
class EventRecord:
    """One discrete event: a timestamp, a category and free-form details."""

    timestamp: float
    category: str
    details: dict


class EventLog:
    """Append-only log of discrete events (failures, elections, migrations...).

    Counts and per-category filtering are indexed at record time, so
    :meth:`count` is O(1) and :meth:`events` with a category copies only that
    category's records -- result collection calls both once per category, which
    used to scan the full log each time.
    """

    def __init__(self) -> None:
        self._records: List[EventRecord] = []
        self._counts: Counter = Counter()
        self._by_category: Dict[str, List[EventRecord]] = {}
        self._metric_family = None
        self._metric_handles: Dict[str, object] = {}

    def bind_metrics(self, registry) -> None:
        """Mirror the log into an ``events_total{category=...}`` counter family.

        Every :meth:`record` call feeds both the log and the registry, so the
        two event paths cannot drift.  Events recorded before binding are
        backfilled from the per-category counts.
        """
        self._metric_family = registry.counter(
            "events_total", help="Discrete events recorded in the event log."
        )
        for category, count in self._counts.items():
            self._metric_family.labels(category=category).inc(count)

    def record(self, timestamp: float, category: str, **details) -> EventRecord:
        """Append an event and return it."""
        record = EventRecord(timestamp=timestamp, category=category, details=details)
        self._records.append(record)
        self._counts[category] += 1
        index = self._by_category.get(category)
        if index is None:
            index = self._by_category[category] = []
        index.append(record)
        if self._metric_family is not None:
            handle = self._metric_handles.get(category)
            if handle is None:
                handle = self._metric_handles[category] = self._metric_family.labels(
                    category=category
                )
            handle.inc()
        return record

    def events(self, category: Optional[str] = None) -> List[EventRecord]:
        """All events, optionally filtered by category."""
        if category is None:
            return list(self._records)
        return list(self._by_category.get(category, ()))

    def count(self, category: Optional[str] = None) -> int:
        """Number of events (optionally of one category); O(1) either way."""
        if category is None:
            return len(self._records)
        return self._counts.get(category, 0)

    def categories(self) -> List[str]:
        """Distinct categories seen so far."""
        return sorted(self._counts)

    def __len__(self) -> int:
        return len(self._records)


class TimeSeries:
    """A named sequence of ``(time, value)`` samples with summary statistics."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, time: float, value: float) -> None:
        """Add one sample; times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise ValueError(f"non-monotonic time in series {self.name!r}")
        self._times.append(float(time))
        self._values.append(float(value))

    @property
    def times(self) -> np.ndarray:
        """Sample times as an array."""
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        """Sample values as an array."""
        return np.asarray(self._values)

    def __len__(self) -> int:
        return len(self._times)

    def latest(self) -> Optional[float]:
        """Most recent value, or None if empty."""
        return self._values[-1] if self._values else None

    def mean(self) -> float:
        """Arithmetic mean of the values (0 if empty)."""
        return float(np.mean(self._values)) if self._values else 0.0

    def min(self) -> float:
        """Minimum value (0 if empty)."""
        return float(np.min(self._values)) if self._values else 0.0

    def max(self) -> float:
        """Maximum value (0 if empty)."""
        return float(np.max(self._values)) if self._values else 0.0

    def time_weighted_mean(self) -> float:
        """Mean weighted by the duration each value was in force (piecewise constant)."""
        if len(self._times) < 2:
            return self.mean()
        times = np.asarray(self._times)
        values = np.asarray(self._values)
        durations = np.diff(times)
        if durations.sum() <= 0:
            return self.mean()
        return float(np.sum(values[:-1] * durations) / durations.sum())

    def integral(self) -> float:
        """Piecewise-constant integral of the series over its time span."""
        if len(self._times) < 2:
            return 0.0
        times = np.asarray(self._times)
        values = np.asarray(self._values)
        return float(np.sum(values[:-1] * np.diff(times)))


class TimeSeriesRecorder:
    """Samples a set of named probes periodically inside a simulation."""

    def __init__(self, sim: Simulator, interval: float = 60.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = float(interval)
        self._probes: Dict[str, Callable[[], float]] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._timer = PeriodicTimer(sim, interval, self.sample_all, name="ts-recorder")

    def add_probe(self, name: str, probe: Callable[[], float]) -> TimeSeries:
        """Register a probe callable sampled every interval; returns its series."""
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = probe
        self._series[name] = TimeSeries(name)
        return self._series[name]

    def sample_all(self) -> None:
        """Sample every probe now (also called automatically by the timer)."""
        now = self.sim.now
        for name, probe in self._probes.items():
            self._series[name].append(now, float(probe()))

    def series(self, name: str) -> TimeSeries:
        """Retrieve a series by name."""
        return self._series[name]

    def all_series(self) -> Dict[str, TimeSeries]:
        """All recorded series."""
        return dict(self._series)

    def stop(self) -> None:
        """Stop periodic sampling."""
        self._timer.stop()
