"""Metrics: event logs, time-series recording and report tables.

The benchmark harness needs the same few ingredients for every experiment:
record scalar series over simulated time (active hosts, cluster power,
application throughput), log discrete events (failures, elections,
migrations), and render small comparison tables that mirror the rows the
paper reports.
"""

from repro.metrics.recorder import EventLog, EventRecord, TimeSeries, TimeSeriesRecorder
from repro.metrics.report import ComparisonTable, format_table

__all__ = [
    "EventLog",
    "EventRecord",
    "TimeSeries",
    "TimeSeriesRecorder",
    "ComparisonTable",
    "format_table",
]
