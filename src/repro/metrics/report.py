"""Small plain-text comparison tables for benchmark output.

The benchmark harness prints the same rows/series the paper reports (hosts
used, energy, deviation from optimal, submission time...).  ``ComparisonTable``
collects rows of ``{column: value}`` dictionaries and renders them with
aligned columns so the pytest-benchmark output remains readable in a terminal
and in the EXPERIMENTS.md excerpts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(cell.ljust(width) for cell, width in zip(line, widths)) for line in rendered
    )
    return f"{header}\n{separator}\n{body}"


class ComparisonTable:
    """Accumulate rows and print them with a title (one per experiment)."""

    def __init__(self, title: str, columns: Optional[Sequence[str]] = None) -> None:
        self.title = title
        self.columns = list(columns) if columns else None
        self.rows: List[Dict[str, object]] = []

    def add_row(self, **values) -> None:
        """Append one row of named values."""
        self.rows.append(values)

    def extend(self, rows: Iterable[Dict[str, object]]) -> None:
        """Append many rows."""
        for row in rows:
            self.rows.append(dict(row))

    def column(self, name: str) -> List[object]:
        """All values of a column, in row order (missing entries skipped)."""
        return [row[name] for row in self.rows if name in row]

    def render(self) -> str:
        """The table as a titled plain-text block."""
        underline = "=" * len(self.title)
        return f"{self.title}\n{underline}\n{format_table(self.rows, self.columns)}"

    def print(self) -> None:
        """Print the rendered table (benchmarks call this so results land in CI logs)."""
        print("\n" + self.render() + "\n")

    def __len__(self) -> int:
        return len(self.rows)
