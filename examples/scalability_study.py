#!/usr/bin/env python3
"""Scalability study: submission latency vs cluster size and number of GMs.

Reproduces the shape of the paper's Section II.F claim: "negligible cost is
involved in performing distributed VM management and the system remains highly
scalable with increasing amounts of VMs and hosts."  The script sweeps the
number of Local Controllers and Group Managers, submits a burst of VMs and
reports the client-observed submission latency plus management-message
overhead.

Run with:  python examples/scalability_study.py [--quick]
"""

import argparse

import numpy as np

from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.metrics.report import ComparisonTable
from repro.workloads import BatchArrival, UniformDemandDistribution, WorkloadGenerator


def run_configuration(lcs: int, gms: int, vms: int, seed: int = 0) -> dict:
    """One data point: an LC/GM sizing and a VM burst."""
    system = SnoozeSystem(
        SystemSpec(local_controllers=lcs, group_managers=gms, entry_points=1),
        config=HierarchyConfig(seed=seed),
        seed=seed,
    )
    system.start()
    generator = WorkloadGenerator(UniformDemandDistribution(0.05, 0.2), BatchArrival(0.0))
    system.submit_requests(generator.generate(vms, np.random.default_rng(seed)))
    system.run_until(
        lambda: len(system.client.records) >= vms and system.client.pending_count() == 0,
        timeout=600.0,
        step=5.0,
    )
    stats = system.stats()
    latencies = system.client.latencies()
    return {
        "lcs": lcs,
        "gms": gms,
        "vms": vms,
        "placed": stats["placed"],
        "mean_latency_ms": 1000.0 * float(np.mean(latencies)) if latencies else float("nan"),
        "p95_latency_ms": 1000.0 * float(np.percentile(latencies, 95)) if latencies else float("nan"),
        "messages": stats["network"]["messages_sent"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sweep for a fast run")
    args = parser.parse_args()

    if args.quick:
        lc_sweep = [(16, 1), (16, 2), (32, 2)]
        vm_counts = [50]
    else:
        lc_sweep = [(16, 1), (16, 2), (48, 2), (48, 4), (96, 4), (144, 4)]
        vm_counts = [100, 250]

    table = ComparisonTable("Submission latency vs cluster size and GM count")
    for vms in vm_counts:
        for lcs, gms in lc_sweep:
            outcome = run_configuration(lcs, gms, vms)
            table.add_row(
                hosts=outcome["lcs"],
                group_managers=outcome["gms"],
                vms_submitted=outcome["vms"],
                placed=outcome["placed"],
                mean_latency_ms=round(outcome["mean_latency_ms"], 2),
                p95_latency_ms=round(outcome["p95_latency_ms"], 2),
                management_messages=outcome["messages"],
            )
    table.print()


if __name__ == "__main__":
    main()
