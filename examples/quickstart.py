#!/usr/bin/env python3
"""Quickstart: the two contributions of the paper in ~60 lines.

1. Pack a batch of VMs with the ACO consolidation algorithm and compare it to
   First-Fit Decreasing (Section III of the paper).
2. Spin up a small Snooze hierarchy, submit VMs through the client layer and
   print the resulting hierarchy organization (Section II).

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ACOConsolidation, FirstFitDecreasing
from repro.core.aco import ACOParameters
from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.workloads import BatchArrival, UniformDemandDistribution, WorkloadGenerator, consolidation_instance


def consolidation_demo() -> None:
    """ACO vs FFD on one synthetic instance."""
    print("=== 1. ACO-based consolidation vs FFD ===")
    rng = np.random.default_rng(7)
    demands, capacities = consolidation_instance(
        60,
        rng,
        demand_distribution=UniformDemandDistribution(0.1, 0.5, dimensions=("cpu", "memory")),
        host_capacity=(1.0, 1.0),
    )
    ffd = FirstFitDecreasing().solve(demands, capacities)
    aco = ACOConsolidation(ACOParameters(n_ants=8, n_cycles=30), rng=np.random.default_rng(1)).solve(
        demands, capacities
    )
    print(f"  FFD : {ffd.hosts_used:3d} hosts, mean utilization {ffd.placement.average_utilization():.3f}")
    print(f"  ACO : {aco.hosts_used:3d} hosts, mean utilization {aco.placement.average_utilization():.3f}")
    saved = ffd.hosts_used - aco.hosts_used
    print(f"  ACO saves {saved} host(s) ({100.0 * saved / ffd.hosts_used:.1f} % fewer hosts)\n")


def hierarchy_demo() -> None:
    """A small Snooze deployment: self-organization, submission, placement."""
    print("=== 2. Snooze hierarchy ===")
    system = SnoozeSystem(
        SystemSpec(local_controllers=8, group_managers=2, entry_points=1),
        config=HierarchyConfig(),
        seed=42,
    )
    system.start()
    print(f"  elected Group Leader: {system.current_leader()}")
    print(f"  Local Controllers joined: {system.assigned_lc_count()} / 8")

    generator = WorkloadGenerator(UniformDemandDistribution(0.1, 0.3), BatchArrival(0.0))
    requests = generator.generate(16, np.random.default_rng(3))
    system.submit_requests(requests)
    system.run(120.0)

    stats = system.stats()
    print(f"  submitted {stats['submissions']} VMs, placed {stats['placed']}")
    print(f"  mean submission latency: {1000 * stats['mean_submission_latency']:.1f} ms")
    print(f"  active hosts: {stats['active_hosts']} / 8")
    print("\n  hierarchy organization:")
    snapshot = system.hierarchy_snapshot()
    for gm, info in sorted(snapshot["group_managers"].items()):
        marker = " (leader)" if info.get("is_leader") else ""
        lcs = info.get("local_controllers", [])
        print(f"    {gm}{marker}: {len(lcs)} local controllers")


if __name__ == "__main__":
    consolidation_demo()
    hierarchy_demo()
