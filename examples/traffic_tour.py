"""Tour of the request-traffic plane: a flash crowd with and without autoscaling.

Runs the ``flash-crowd-autoscale`` catalog scenario twice -- once as shipped
(latency-threshold autoscaling) and once with the autoscaler stripped so the
two fixed replicas face the crowd alone -- and compares the user-facing SLA:
served/dropped requests, latency quantiles and replica-group activity.

Run with::

    PYTHONPATH=src python examples/traffic_tour.py
"""

from __future__ import annotations

from repro.metrics.report import ComparisonTable
from repro.scenarios import get_scenario, run_scenario

SEED = 7


def main() -> None:
    autoscaled = get_scenario("flash-crowd-autoscale")
    fixed = get_scenario("flash-crowd-autoscale")
    fixed.traffic.services[0].autoscaling = None
    fixed.description = "Same crowd, same two replicas, no autoscaler."

    print(f"Scenario: {autoscaled.name} (seed {SEED})")
    print(f"  {autoscaled.description}\n")

    results = {}
    for label, spec in (("autoscaled", autoscaled), ("fixed-fleet", fixed)):
        results[label] = run_scenario(spec, seed=SEED)

    table = ComparisonTable("Flash crowd: users' view of the fleet")
    for label, result in results.items():
        traffic = result.traffic
        service = traffic["services"]["frontpage"]
        table.add_row(
            run=label,
            offered=traffic["requests"]["offered"],
            dropped_pct=round(100.0 * traffic["requests"]["dropped_ratio"], 2),
            p50_ms=round(1000.0 * traffic["latency_seconds"]["p50"], 1),
            p99_ms=round(1000.0 * traffic["latency_seconds"]["p99"], 1),
            replicas_peak=service["replicas_peak"],
            scale_out=service["scale_out_total"],
            scale_in=service["scale_in_total"],
        )
    table.print()

    on = results["autoscaled"].traffic
    off = results["fixed-fleet"].traffic
    print(
        "\nThe autoscaler cut p99 from "
        f"{off['latency_seconds']['p99'] * 1000:.0f} ms to "
        f"{on['latency_seconds']['p99'] * 1000:.0f} ms and the drop rate from "
        f"{off['requests']['dropped_ratio']:.1%} to "
        f"{on['requests']['dropped_ratio']:.1%} -- every extra replica was "
        "placed through the ordinary submission path and is visible to "
        "monitoring, relocation and energy accounting like any other VM."
    )


if __name__ == "__main__":
    main()
