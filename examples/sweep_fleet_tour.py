"""Tour of the distributed sweep plane: a runner fleet, a crash, and answers.

Runs the same small grid three ways -- in-process serial, a 2-runner loopback
fleet, and a 2-runner fleet where one runner is killed mid-sweep -- shows the
three reports are byte-identical, then finishes with the Pareto-front
analysis that turns the grid into an answer.

Run with::

    PYTHONPATH=src python examples/sweep_fleet_tour.py
"""

from __future__ import annotations

from repro.metrics.report import ComparisonTable
from repro.sweeps import DistributedExecutor, SweepSpec, run_sweep

SPEC = SweepSpec(
    name="fleet-tour",
    description="two scenarios x two placement policies",
    scenarios=["steady-churn", "flash-crowd"],
    policies=[{}, {"placement": {"name": "best-fit"}}],
    seeds=[2012],
    duration=600.0,
)


def main() -> None:
    print(f"Sweep: {SPEC.name} ({SPEC.total_runs()} cells)\n")

    serial = run_sweep(SPEC, jobs=1)

    fleet_executor = DistributedExecutor(runners=2)
    fleet = run_sweep(SPEC, executor=fleet_executor)

    # Chaos drill: runner 0 hard-exits (os._exit) while holding its first
    # lease; the coordinator reclaims the lease on disconnect and retries the
    # cell on the surviving runner.
    chaos_executor = DistributedExecutor(
        runners=2,
        lease_seconds=2.0,
        runner_env=[{"REPRO_SWEEP_RUNNER_FAULT": "die-after-pulls:1"}, None],
    )
    chaos = run_sweep(SPEC, executor=chaos_executor)

    table = ComparisonTable("One grid, three backends")
    for label, report, stats in (
        ("serial", serial, {}),
        ("2 runners", fleet, fleet_executor.last_stats),
        ("2 runners, 1 killed", chaos, chaos_executor.last_stats),
    ):
        table.add_row(
            backend=label,
            wall_seconds=round(report.timing["wall_seconds_total"], 2),
            failed=report.failed,
            leases=stats.get("leases_granted", "-"),
            reclaimed=stats.get("reclaimed_disconnect", "-"),
            retries=stats.get("retries", "-"),
            identical_to_serial=report.to_json() == serial.to_json(),
        )
    table.print()

    print(
        "\nEvery backend produced the same bytes: outcomes are reassembled in"
        " run-index order and wall clocks never enter the canonical report,"
        " so a crashed runner costs time, not correctness.\n"
    )

    analysis = serial.pareto()
    for scenario, entry in analysis["scenarios"].items():
        table = ComparisonTable(f"{scenario}: Pareto ranks (minimizing "
                                f"{', '.join(analysis['objectives'])})")
        for cell in entry["cells"]:
            table.add_row(
                rank=cell["rank"],
                policies=cell["policies"],
                **{name: round(value, 4) for name, value in cell["objectives"].items()},
            )
        table.print()
        front = ", ".join(cell["policies"] for cell in entry["front"])
        print(f"  non-dominated: {front}\n")


if __name__ == "__main__":
    main()
