#!/usr/bin/env python3
"""Energy-aware data-center scenario: a diurnal day on a Snooze-managed cluster.

This is the workload the paper's introduction motivates: a private cloud whose
load follows a day/night pattern, managed by Snooze with

  (a) no power management (every host stays on),
  (b) idle-host power management (underload relocation + suspend), and
  (c) power management plus periodic ACO consolidation.

The script prints the energy consumed by each configuration over the same
simulated day and the relative savings -- the qualitative content of the
paper's Section III (energy experiments E5/E6 in DESIGN.md).

Run with:  python examples/datacenter_energy.py [--hours 6] [--lcs 24]
"""

import argparse

import numpy as np

from repro.energy.power_manager import PowerManagerConfig
from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.metrics.report import ComparisonTable
from repro.workloads import (
    BatchArrival,
    DiurnalTrace,
    UniformDemandDistribution,
    WorkloadGenerator,
)


def build_system(lcs: int, energy: bool, consolidation: bool, seed: int) -> SnoozeSystem:
    """One deployment variant: power management and consolidation toggled."""
    config = HierarchyConfig(
        seed=seed,
        monitoring_interval=60.0,
        summary_interval=60.0,
        power_manager=PowerManagerConfig(
            enabled=energy,
            idle_time_threshold=300.0,
            check_interval=120.0,
            min_powered_on_hosts=2,
        ),
        reconfiguration_interval=3600.0 if consolidation else None,
        reconfiguration_algorithm="aco",
        energy_sample_interval=120.0,
    )
    return SnoozeSystem(
        SystemSpec(local_controllers=lcs, group_managers=2, entry_points=1),
        config=config,
        seed=seed,
    )


def run_scenario(lcs: int, vms: int, hours: float, energy: bool, consolidation: bool, seed: int) -> dict:
    """Run one configuration for the same workload and return its energy report."""
    system = build_system(lcs, energy, consolidation, seed)
    system.start()
    rng = np.random.default_rng(seed)
    generator = WorkloadGenerator(
        UniformDemandDistribution(0.15, 0.4),
        BatchArrival(0.0),
        trace_factory=lambda stream: DiurnalTrace(
            base=0.15, peak=0.85, noise_std=0.05, rng=stream
        ),
    )
    system.submit_requests(generator.generate(vms, rng))
    system.enable_recording(interval=300.0)
    system.run(hours * 3600.0)
    report = system.energy_report()
    stats = system.stats()
    recorder = system.recorder
    return {
        "energy_kwh": report.total_energy_kwh,
        "placed": stats["placed"],
        "mean_powered_on": recorder.series("powered_on_hosts").time_weighted_mean(),
        "mean_active": recorder.series("active_hosts").time_weighted_mean(),
        "migrations": stats["migrations_completed"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lcs", type=int, default=24, help="number of hosts")
    parser.add_argument("--vms", type=int, default=40, help="number of VMs")
    parser.add_argument("--hours", type=float, default=6.0, help="simulated hours")
    parser.add_argument("--seed", type=int, default=11, help="random seed")
    args = parser.parse_args()

    configurations = [
        ("no power management", False, False),
        ("idle-host suspend", True, False),
        ("suspend + ACO consolidation", True, True),
    ]
    table = ComparisonTable(
        f"Energy over {args.hours:.0f} h, {args.lcs} hosts, {args.vms} VMs (diurnal load)"
    )
    baseline_energy = None
    for label, energy, consolidation in configurations:
        outcome = run_scenario(args.lcs, args.vms, args.hours, energy, consolidation, args.seed)
        if baseline_energy is None:
            baseline_energy = outcome["energy_kwh"]
        saving = 1.0 - outcome["energy_kwh"] / baseline_energy if baseline_energy else 0.0
        table.add_row(
            configuration=label,
            energy_kwh=round(outcome["energy_kwh"], 3),
            saving=f"{100 * saving:.1f}%",
            mean_powered_on_hosts=round(outcome["mean_powered_on"], 1),
            placed_vms=outcome["placed"],
            migrations=outcome["migrations"],
        )
    table.print()


if __name__ == "__main__":
    main()
