"""Tour of the declarative scenario engine.

Runs a handful of catalog scenarios plus one custom spec built inline, and
prints a comparison of their headline metrics -- the programmatic equivalent
of ``repro-sim scenario run <name> --json``.

Run with::

    PYTHONPATH=src python examples/scenario_tour.py
"""

from __future__ import annotations

from repro.cluster.topology import NodeClass
from repro.metrics.report import ComparisonTable
from repro.scenarios import (
    ScenarioSpec,
    TimelineEvent,
    WorkloadPhase,
    get_scenario,
    run_scenario,
    scenario_names,
)


def custom_spec() -> ScenarioSpec:
    """A scenario the catalog does not ship: churn on a tiny mixed fleet
    with a mid-run leader crash -- composed from the same declarative parts."""
    return ScenarioSpec(
        name="custom-mixed-churn",
        description="Custom example: churn on a mixed fleet with a leader crash",
        duration=1800.0,
        group_managers=2,
        node_classes=[
            NodeClass(name="fat", count=2, capacity=(2.0, 2.0, 1.0), p_idle=220.0, p_max=320.0),
            NodeClass(name="thin", count=6, capacity=(1.0, 1.0, 1.0)),
        ],
        phases=[
            WorkloadPhase(
                name="churn",
                vm_count=20,
                arrival={"kind": "poisson", "rate_per_hour": 240.0},
                demand={"kind": "uniform", "low": 0.1, "high": 0.4},
                trace={"kind": "constant", "level": 0.7},
                lifetime={"kind": "exponential", "mean": 500.0, "minimum": 60.0},
            )
        ],
        timeline=[TimelineEvent(at=600.0, action="kill_leader")],
    )


def main() -> None:
    print(f"Catalog: {', '.join(scenario_names())}\n")
    table = ComparisonTable("Scenario tour (seed 0, shortened runs)")
    tour = [get_scenario("steady-churn"), get_scenario("flash-crowd"), custom_spec()]
    for spec in tour:
        result = run_scenario(spec, seed=0, duration=min(spec.duration, 1200.0))
        table.add_row(
            scenario=spec.name,
            placed=result.submissions["placed"],
            departed=result.churn["departed"],
            active_end=result.churn["active_at_end"],
            mean_hosts=round(result.packing["mean_active_hosts"], 2),
            kwh=round(result.energy["infrastructure_kwh"], 3),
            failures=result.availability["failures_injected"],
        )
    table.print()


if __name__ == "__main__":
    main()
