"""Tour of the observability plane: traces, metrics and profiles.

Runs one churn scenario with every pillar enabled, then walks the three
exports:

1. the causal trace of a VM submission (submit -> forward -> dispatch ->
   placement -> boot), reassembled from the span tree and written out as
   Chrome trace-event JSON you can open in ``chrome://tracing`` / Perfetto;
2. a slice of the Prometheus metrics exposition;
3. the event-loop profile: which handlers the wall clock went to.

Run with::

    PYTHONPATH=src python examples/trace_tour.py [trace-output.json]
"""

from __future__ import annotations

import json
import sys

from repro.scenarios import ScenarioRunner, ScenarioSpec, get_scenario


def observed_spec() -> ScenarioSpec:
    """The catalog churn scenario with all three pillars switched on."""
    data = get_scenario("steady-churn").to_dict()
    data["config"] = dict(data["config"])
    data["config"]["observability"] = {"metrics": True, "tracing": True, "profiling": True}
    return ScenarioSpec.from_dict(data)


def print_submission_chain(tracer) -> None:
    spans = tracer.spans
    by_id = {span.span_id: span for span in spans}

    def depth(span) -> int:
        level, current = 0, span
        while current.parent_id is not None and current.parent_id in by_id:
            level, current = level + 1, by_id[current.parent_id]
        return level

    submit = next(span for span in spans if span.name == "vm_submit")
    chain = sorted(
        (span for span in spans if span.trace_id == submit.trace_id),
        key=lambda span: (span.start, span.span_id),
    )
    print(f"One submission, end to end (trace {submit.trace_id}):")
    for span in chain:
        duration = "instant" if span.duration is None else f"{span.duration * 1000:7.1f} ms"
        attrs = ", ".join(f"{key}={value}" for key, value in sorted(span.attrs.items()))
        print(f"  {'  ' * depth(span)}{span.name:<18} [{span.component:<12}] {duration}  {attrs}")


def print_metrics_slice(plane) -> None:
    print("\nPrometheus exposition (first counter family):")
    lines = plane.metrics_text().splitlines()
    for line in lines[: lines.index("") if "" in lines else 8][:8]:
        print(f"  {line}")


def print_profile(plane) -> None:
    profile = plane.profiler.summary(top=5)
    print(f"\nEvent-loop profile ({profile['handler_calls']} handler calls, "
          f"{profile['total_seconds'] * 1000:.0f} ms attributed):")
    for name, entry in profile["handlers"].items():
        print(f"  {entry['share']:6.1%}  {name:<35} {entry['calls']:>6} calls")


def main() -> None:
    runner = ScenarioRunner(observed_spec(), seed=11, duration=600.0)
    result = runner.run()
    plane = runner.system.obs

    placed = result.submissions["placed"]
    spans = len(plane.tracer.spans)
    print(f"steady-churn, seed 11, 600 s simulated: {placed} VMs placed, {spans} spans\n")

    print_submission_chain(plane.tracer)
    print_metrics_slice(plane)
    print_profile(plane)

    out = sys.argv[1] if len(sys.argv) > 1 else "trace_tour.trace.json"
    with open(out, "w") as handle:
        json.dump(plane.chrome_trace(), handle)
    print(f"\nChrome trace written to {out} -- open it in chrome://tracing or")
    print(f"summarize it with: repro-sim obs summarize {out}")


if __name__ == "__main__":
    main()
