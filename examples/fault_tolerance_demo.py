#!/usr/bin/env python3
"""Fault-tolerance demonstration: self-healing after GL / GM / LC failures.

Reproduces the qualitative behaviour of the paper's Section II.E/II.F: crash
each kind of component mid-run and watch the hierarchy self-heal while the
already-placed VMs keep running:

* killing the **Group Leader** triggers a new election among the Group
  Managers; Entry Points and Local Controllers follow the new leader's
  heartbeats;
* killing a **Group Manager** makes its Local Controllers rejoin the
  hierarchy through the Group Leader;
* killing a **Local Controller** loses its VMs (the paper's stated
  semantics) and the Group Manager invalidates its contact information.

Run with:  python examples/fault_tolerance_demo.py
"""

import numpy as np

from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.workloads import BatchArrival, UniformDemandDistribution, WorkloadGenerator


def banner(text: str) -> None:
    print(f"\n--- {text} ---")


def show(system: SnoozeSystem, label: str) -> None:
    stats = system.stats()
    print(
        f"[t={system.sim.now:7.1f}s] {label}: leader={stats['leader']}, "
        f"assigned LCs={stats['local_controllers_assigned']}, running VMs={stats['running_vms']}"
    )


def main() -> None:
    config = HierarchyConfig(seed=5)
    system = SnoozeSystem(
        SystemSpec(local_controllers=12, group_managers=3, entry_points=2),
        config=config,
        seed=5,
    )
    system.start()
    generator = WorkloadGenerator(UniformDemandDistribution(0.1, 0.3), BatchArrival(0.0))
    system.submit_requests(generator.generate(24, np.random.default_rng(9)))
    system.run(60.0)
    show(system, "steady state")

    banner("1. Group Leader failure")
    killed_gl = system.kill_group_leader()
    print(f"killed {killed_gl}")
    healed = system.run_until(
        lambda: system.current_leader() is not None and system.current_leader() != killed_gl,
        timeout=120.0,
    )
    show(system, f"after GL failover (healed={healed})")
    system.run_until(lambda: system.assigned_lc_count() >= 12 - 0, timeout=120.0)
    show(system, "after LC re-assignment")

    banner("2. Group Manager failure")
    victim_gm = next(
        name
        for name, gm in system.group_managers.items()
        if gm.is_running and not gm.is_leader and len(gm.local_controllers) > 0
    )
    orphaned = len(system.group_managers[victim_gm].local_controllers)
    system.kill_group_manager(victim_gm)
    print(f"killed {victim_gm} (managed {orphaned} LCs)")
    system.run_until(lambda: system.assigned_lc_count() >= 12, timeout=180.0)
    show(system, "after orphaned LCs rejoined")

    banner("3. Local Controller failure")
    victim_lc = next(
        name for name, lc in system.local_controllers.items() if lc.is_running and lc.node.vm_count > 0
    )
    lost_vms = system.local_controllers[victim_lc].node.vm_count
    system.kill_local_controller(victim_lc)
    print(f"killed {victim_lc} (hosting {lost_vms} VMs -- lost, per the paper's failure model)")
    system.run(60.0)
    show(system, "after LC failure")

    banner("4. Recovery")
    system.recover_component(victim_lc)
    system.run_until(lambda: system.local_controllers[victim_lc].is_assigned, timeout=120.0)
    show(system, f"after {victim_lc} recovered and rejoined")

    banner("event log excerpt")
    for record in system.event_log.events("elected_group_leader"):
        print(f"  t={record.timestamp:7.1f}s  {record.category}: {record.details}")


if __name__ == "__main__":
    main()
