#!/usr/bin/env python3
"""Consolidation study: ACO vs FFD variants vs the exact optimum.

Reproduces the flavour of the paper's Section III.B evaluation (the GRID'11
study it summarizes): over several random instances, compare the number of
hosts used, the average host utilization, the energy of the resulting
placement (including the energy spent computing it) and -- on small instances
-- the deviation from the exact optimum.

Run with:  python examples/consolidation_study.py [--quick]
"""

import argparse

import numpy as np

from repro.core import (
    ACOConsolidation,
    BestFitDecreasing,
    BranchAndBoundOptimal,
    FirstFitDecreasing,
)
from repro.core.aco import ACOParameters
from repro.core.ffd import SortKey
from repro.energy.accounting import static_placement_energy
from repro.metrics.report import ComparisonTable
from repro.simulation.randomness import spawn_generator
from repro.workloads import UniformDemandDistribution, consolidation_instance

#: Computation power charged for algorithm runtime (same constant as the E2 bench).
COMPUTE_POWER_WATTS = 120.0
#: Horizon the placement stays in force (the GRID'11 accounting interval).
PLACEMENT_HORIZON_S = 3600.0


def small_instance_study(seeds: range) -> None:
    """Small instances where the exact optimum is provable: deviation from optimal."""
    table = ComparisonTable("Small instances: deviation from the exact optimum")
    deviations = {"ffd": [], "aco": []}
    for seed in seeds:
        rng = np.random.default_rng(seed)
        demands, capacities = consolidation_instance(
            12,
            rng,
            demand_distribution=UniformDemandDistribution(0.1, 0.5, dimensions=("cpu", "memory")),
            host_capacity=(1.0, 1.0),
        )
        optimal = BranchAndBoundOptimal(time_limit_seconds=10.0).solve(demands, capacities)
        ffd = FirstFitDecreasing().solve(demands, capacities)
        aco = ACOConsolidation(
            ACOParameters(n_ants=10, n_cycles=40), rng=spawn_generator(seed, 1)
        ).solve(demands, capacities)
        deviations["ffd"].append(ffd.hosts_used / optimal.hosts_used - 1.0)
        deviations["aco"].append(aco.hosts_used / optimal.hosts_used - 1.0)
        table.add_row(
            seed=seed,
            optimal=optimal.hosts_used,
            ffd=ffd.hosts_used,
            aco=aco.hosts_used,
            aco_deviation=f"{100 * deviations['aco'][-1]:.1f}%",
        )
    table.print()
    print(
        f"mean deviation from optimal: ACO {100 * np.mean(deviations['aco']):.2f} %, "
        f"FFD {100 * np.mean(deviations['ffd']):.2f} %  (paper: ACO ~1.1 %)\n"
    )


def scale_study(sizes, seeds: range) -> None:
    """Larger instances: hosts and energy saved by ACO relative to FFD."""
    table = ComparisonTable("Scale study: ACO vs FFD (hosts and energy)")
    host_savings, energy_savings = [], []
    for n_vms in sizes:
        for seed in seeds:
            rng = np.random.default_rng(seed)
            demands, capacities = consolidation_instance(
                n_vms,
                rng,
                demand_distribution=UniformDemandDistribution(0.1, 0.5, dimensions=("cpu", "memory")),
                host_capacity=(1.0, 1.0),
            )
            algorithms = {
                "ffd": FirstFitDecreasing(sort_key=SortKey.SINGLE_DIMENSION),
                "bfd": BestFitDecreasing(),
                "aco": ACOConsolidation(
                    ACOParameters(n_ants=8, n_cycles=25), rng=spawn_generator(seed, 1)
                ),
            }
            results = {name: algo.solve(demands, capacities) for name, algo in algorithms.items()}
            energies = {
                name: static_placement_energy(
                    result.hosts_used,
                    result.placement.average_utilization(),
                    PLACEMENT_HORIZON_S,
                )
                + result.runtime_seconds * COMPUTE_POWER_WATTS
                for name, result in results.items()
            }
            host_savings.append(1.0 - results["aco"].hosts_used / results["ffd"].hosts_used)
            energy_savings.append(1.0 - energies["aco"] / energies["ffd"])
            table.add_row(
                vms=n_vms,
                seed=seed,
                ffd_hosts=results["ffd"].hosts_used,
                bfd_hosts=results["bfd"].hosts_used,
                aco_hosts=results["aco"].hosts_used,
                aco_energy_saving=f"{100 * energy_savings[-1]:.1f}%",
            )
    table.print()
    print(
        f"mean ACO saving vs FFD: hosts {100 * np.mean(host_savings):.2f} %, "
        f"energy {100 * np.mean(energy_savings):.2f} %  (paper: 4.7 % hosts, 4.1 % energy)\n"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer seeds/sizes for a fast run")
    args = parser.parse_args()
    if args.quick:
        small_instance_study(range(3))
        scale_study([50, 100], range(2))
    else:
        small_instance_study(range(8))
        scale_study([50, 100, 200], range(3))


if __name__ == "__main__":
    main()
